// SUPI concealment: SUCI construction and SIDF de-concealment
// (TS 33.501 §6.12, TS 23.003 §2.2B).
//
// A SUCI carries the PLMN in the clear plus the ECIES "scheme output"
// concealing the MSIN (the subscriber-specific part of the IMSI). The
// null scheme (scheme id 0) is also implemented because the paper's test
// PLMN 001/01 setup, like many lab cores, must interoperate with SIMs
// configured either way.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/x25519.h"

namespace shield5g::crypto {

enum class SuciScheme : std::uint8_t {
  kNull = 0,
  kProfileA = 1,  // X25519-based ECIES (the one we implement fully)
};

struct Suci {
  std::string mcc;             // 3 digits, in the clear
  std::string mnc;             // 2-3 digits, in the clear
  std::string routing_indicator = "0000";
  SuciScheme scheme = SuciScheme::kProfileA;
  std::uint8_t hn_key_id = 1;  // home-network public-key identifier
  Bytes scheme_output;         // concealed MSIN (or plain MSIN for null)

  /// Canonical textual form, e.g.
  /// "suci-0-001-01-0000-1-1-<hex scheme output>".
  std::string to_string() const;
  static std::optional<Suci> from_string(const std::string& s);
};

/// Conceals an IMSI-format SUPI ("<mcc><mnc><msin>").
/// For Profile A, `hn_public` is the home network X25519 public key and
/// `ephemeral_random` supplies 32 bytes of entropy.
Suci conceal_supi(const std::string& mcc, const std::string& mnc,
                  const std::string& msin, SuciScheme scheme,
                  ByteView hn_public, ByteView ephemeral_random);

/// Variant consuming a pregenerated ephemeral key pair from the
/// precompute pool (crypto/eph_pool.h): identical output for the same
/// ephemeral scalar, one scalar mult instead of two.
Suci conceal_supi(const std::string& mcc, const std::string& mnc,
                  const std::string& msin, SuciScheme scheme,
                  ByteView hn_public, const X25519KeyPair& ephemeral);

/// Variant consuming a pool-prepared pair with the shared secret
/// against `hn_public` already computed (batched off the critical
/// path): zero scalar mults in-line. Identical output for the same
/// ephemeral scalar.
Suci conceal_supi(const std::string& mcc, const std::string& mnc,
                  const std::string& msin, SuciScheme scheme,
                  ByteView hn_public, const X25519SharedKeyPair& prepared);

/// SIDF side: recovers the SUPI string "<mcc><mnc><msin>".
/// Returns nullopt on MAC failure or malformed scheme output.
/// The home-network private scalar is tainted.
std::optional<std::string> deconceal_suci(const Suci& suci,
                                          SecretView hn_private);

/// Packs decimal digits two-per-byte (TBCD-style, 0xf filler).
Bytes pack_digits(const std::string& digits);
std::string unpack_digits(ByteView packed, std::size_t digit_count);

}  // namespace shield5g::crypto
