// Internal SHA-256 kernel entry points (not part of the public API).
//
// The SHA-NI function lives in its own translation unit compiled with
// the `sha` target attribute; Sha256::process_blocks calls it only
// after checking cpu_has_shani(). Kernels never touch the op counters —
// the dispatcher charges per block before calling in.
#pragma once

#include <cstddef>
#include <cstdint>

namespace shield5g::crypto::detail {

/// True when this build carries the SHA-NI kernel at all (x86-64 only).
bool shani_compiled() noexcept;

/// Runs the SHA-256 compression function over `nblocks` consecutive
/// 64-byte blocks, updating `state` (h0..h7) in place.
void shani_compress(std::uint32_t* state, const std::uint8_t* data,
                    std::size_t nblocks);

}  // namespace shield5g::crypto::detail
