// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//
// The TS 33.220 generic key-derivation function — and therefore every key
// in the 5G hierarchy (K_AUSF, K_SEAF, K_AMF, NAS keys, RES*) — is an
// HMAC-SHA-256 invocation. Also used as the MAC of the ECIES SUCI scheme
// and the quote signature of the simulated attestation service.
#pragma once

#include "common/bytes.h"

namespace shield5g::crypto {

/// Computes HMAC-SHA-256(key, data). Any key length is accepted.
Bytes hmac_sha256(ByteView key, ByteView data);

/// Two-part message variant: HMAC-SHA-256(key, part1 || part2) without
/// materializing the concatenation (the TLS record layer MACs
/// seq || ciphertext per record).
Bytes hmac_sha256(ByteView key, ByteView part1, ByteView part2);

/// Truncated variant: the first `n` bytes of the MAC (n <= 32).
Bytes hmac_sha256_trunc(ByteView key, ByteView data, std::size_t n);
Bytes hmac_sha256_trunc(ByteView key, ByteView part1, ByteView part2,
                        std::size_t n);

/// Writes the first `n` bytes of HMAC-SHA-256(key, part1 || part2) to
/// `out` without allocating (the TLS record layer writes the tag
/// straight into the record tail of a pooled buffer).
void hmac_sha256_trunc_into(ByteView key, ByteView part1, ByteView part2,
                            std::uint8_t* out, std::size_t n);

}  // namespace shield5g::crypto
