// Generic 3GPP key-derivation function (TS 33.220 Annex B.2).
//
// Every key in the 5G hierarchy is derived as
//     HMAC-SHA-256(Key, FC || P0 || L0 || P1 || L1 || ...)
// where each Li is the 2-byte big-endian length of the corresponding Pi.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/secret.h"

namespace shield5g::crypto {

/// One input parameter block Pi of the KDF S-string.
struct KdfParam {
  Bytes value;
};

/// Builds the S string: FC || P0 || L0 || ... || Pn || Ln.
Bytes kdf_s_string(std::uint8_t fc, const std::vector<KdfParam>& params);

/// Full 32-byte derived key. The input key is tainted (every caller
/// holds a hierarchy key); the raw output is classified by the named
/// derivations in key_hierarchy.h — key outputs wrap into SecretBytes,
/// protocol outputs (RES*) stay plain.
Bytes kdf(SecretView key, std::uint8_t fc,
          const std::vector<KdfParam>& params);

/// 3GPP truncation rule for 128-bit keys: the 128 *least significant*
/// bits (i.e. trailing 16 bytes) of the 256-bit KDF output.
Bytes kdf_trunc128(SecretView key, std::uint8_t fc,
                   const std::vector<KdfParam>& params);

}  // namespace shield5g::crypto
