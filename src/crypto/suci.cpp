#include "crypto/suci.h"

#include <sstream>
#include <stdexcept>

#include "common/hex.h"
#include "crypto/ecies.h"

namespace shield5g::crypto {

namespace {
bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}
}  // namespace

Bytes pack_digits(const std::string& digits) {
  if (!all_digits(digits)) {
    throw std::invalid_argument("pack_digits: non-digit input");
  }
  Bytes out((digits.size() + 1) / 2);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    const auto nibble = static_cast<std::uint8_t>(digits[i] - '0');
    if (i % 2 == 0) {
      out[i / 2] = nibble;
    } else {
      out[i / 2] = static_cast<std::uint8_t>(out[i / 2] | (nibble << 4));
    }
  }
  if (digits.size() % 2 == 1) {
    out.back() = static_cast<std::uint8_t>(out.back() | 0xf0);
  }
  return out;
}

std::string unpack_digits(ByteView packed, std::size_t digit_count) {
  if (packed.size() < (digit_count + 1) / 2) {
    throw std::invalid_argument("unpack_digits: buffer too short");
  }
  std::string out;
  out.reserve(digit_count);
  for (std::size_t i = 0; i < digit_count; ++i) {
    const std::uint8_t byte = packed[i / 2];
    const std::uint8_t nibble = (i % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
    if (nibble > 9) throw std::invalid_argument("unpack_digits: bad nibble");
    out.push_back(static_cast<char>('0' + nibble));
  }
  return out;
}

std::string Suci::to_string() const {
  std::ostringstream os;
  os << "suci-0-" << mcc << "-" << mnc << "-" << routing_indicator << "-"
     << static_cast<int>(scheme) << "-" << static_cast<int>(hn_key_id) << "-"
     << hex_encode(scheme_output);
  return os.str();
}

std::optional<Suci> Suci::from_string(const std::string& s) {
  std::istringstream is(s);
  std::string field;
  std::vector<std::string> fields;
  while (std::getline(is, field, '-')) fields.push_back(field);
  if (fields.size() != 8 || fields[0] != "suci" || fields[1] != "0") {
    return std::nullopt;
  }
  Suci suci;
  suci.mcc = fields[2];
  suci.mnc = fields[3];
  suci.routing_indicator = fields[4];
  try {
    const int scheme = std::stoi(fields[5]);
    if (scheme != 0 && scheme != 1) return std::nullopt;
    suci.scheme = static_cast<SuciScheme>(scheme);
    suci.hn_key_id = static_cast<std::uint8_t>(std::stoi(fields[6]));
    suci.scheme_output = hex_decode(fields[7]);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return suci;
}

namespace {
template <typename Ephemeral>
Suci conceal_supi_impl(const std::string& mcc, const std::string& mnc,
                       const std::string& msin, SuciScheme scheme,
                       ByteView hn_public, const Ephemeral& ephemeral) {
  if (!all_digits(mcc) || !all_digits(mnc) || !all_digits(msin)) {
    throw std::invalid_argument("conceal_supi: non-digit identifier");
  }
  Suci suci;
  suci.mcc = mcc;
  suci.mnc = mnc;
  suci.scheme = scheme;

  // The MSIN digit count must survive the round trip; prefix one byte.
  Bytes plaintext;
  plaintext.push_back(static_cast<std::uint8_t>(msin.size()));
  const Bytes packed = pack_digits(msin);
  plaintext.insert(plaintext.end(), packed.begin(), packed.end());

  switch (scheme) {
    case SuciScheme::kNull:
      suci.scheme_output = plaintext;
      break;
    case SuciScheme::kProfileA: {
      const EciesCiphertext ct = ecies_encrypt(hn_public, plaintext, ephemeral);
      suci.scheme_output = ct.serialize();
      break;
    }
  }
  return suci;
}
}  // namespace

Suci conceal_supi(const std::string& mcc, const std::string& mnc,
                  const std::string& msin, SuciScheme scheme,
                  ByteView hn_public, ByteView ephemeral_random) {
  return conceal_supi_impl(mcc, mnc, msin, scheme, hn_public,
                           ephemeral_random);
}

Suci conceal_supi(const std::string& mcc, const std::string& mnc,
                  const std::string& msin, SuciScheme scheme,
                  ByteView hn_public, const X25519KeyPair& ephemeral) {
  return conceal_supi_impl(mcc, mnc, msin, scheme, hn_public, ephemeral);
}

Suci conceal_supi(const std::string& mcc, const std::string& mnc,
                  const std::string& msin, SuciScheme scheme,
                  ByteView hn_public, const X25519SharedKeyPair& prepared) {
  return conceal_supi_impl(mcc, mnc, msin, scheme, hn_public, prepared);
}

std::optional<std::string> deconceal_suci(const Suci& suci,
                                          SecretView hn_private) {
  Bytes plaintext;
  switch (suci.scheme) {
    case SuciScheme::kNull:
      plaintext = suci.scheme_output;
      break;
    case SuciScheme::kProfileA: {
      constexpr std::size_t kOverhead = kX25519KeySize + 8;
      if (suci.scheme_output.size() < kOverhead + 1) return std::nullopt;
      const std::size_t pt_len = suci.scheme_output.size() - kOverhead;
      EciesCiphertext ct;
      try {
        ct = EciesCiphertext::deserialize(suci.scheme_output, pt_len);
      } catch (const std::exception&) {
        return std::nullopt;
      }
      auto decrypted = ecies_decrypt(hn_private, ct);
      // ct-audited(branch on AEAD authentication outcome; rejection is attacker-observable by protocol design)
      if (!decrypted) return std::nullopt;
      plaintext = std::move(*decrypted);
      break;
    }
  }
  if (plaintext.empty()) return std::nullopt;
  const std::size_t digit_count = plaintext[0];
  // ct-audited(digit_count is the deconcealed MSIN length; SUCI framing is public and a malformed length must be rejected)
  if (digit_count < 5 || digit_count > 15) return std::nullopt;
  try {
    const std::string msin =
        unpack_digits(ByteView(plaintext).subspan(1), digit_count);
    return suci.mcc + suci.mnc + msin;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace shield5g::crypto
