// AVX2 4-lane X25519 ladder kernels (the only TU built with -mavx2).
//
// Everything here is guarded by __AVX2__: when the toolchain cannot
// target AVX2 this file compiles to stubs and the batch dispatcher
// (x25519_batch.cpp, built with the normal flags so no AVX2 code can
// leak into fallback paths) keeps the scalar engine. Callers must gate
// on x25519_x4_compiled() && cpu_has_avx2() before entering the
// kernels.
#include "crypto/x25519_batch.h"

#include <cstdlib>

#include "crypto/fe25519.h"

#if defined(__AVX2__)
#include "crypto/fe25519x4.h"
#endif

namespace shield5g::crypto::detail {

#if defined(__AVX2__)

namespace {

using fe25519::Fe;
using namespace fe25519x4;

// Value-preserving re-carry into < 2^52 limbs (fe_store's lossy passes
// without the canonicalization), so test-hook inputs with limbs up to
// 2^54 fit the fe4_from_lanes contract.
Fe loose_carry(const Fe& in) {
  using fe25519::kMask51;
  Fe t = in;
  for (int pass = 0; pass < 2; ++pass) {
    t[1] += t[0] >> 51; t[0] &= kMask51;
    t[2] += t[1] >> 51; t[1] &= kMask51;
    t[3] += t[2] >> 51; t[2] &= kMask51;
    t[4] += t[3] >> 51; t[3] &= kMask51;
    t[0] += 19 * (t[4] >> 51); t[4] &= kMask51;
  }
  return t;
}

// The RFC 7748 step sequence itself is shared with the IFMA kernel TU.
#include "crypto/x25519_lanes.inl"

}  // namespace

bool x25519_x4_compiled() noexcept { return true; }

void x25519_x4_ladder4(const std::uint8_t k[4][32],
                       const std::uint8_t* const u[4],
                       std::uint8_t out[4][32]) {
  lanes_ladder4(k, u, out);
}

bool x25519_x4_mul(const Fe a[4], const Fe b[4], Fe r[4]) {
  Fe an[4], bn[4];
  for (int l = 0; l < 4; ++l) {
    an[l] = loose_carry(a[l]);
    bn[l] = loose_carry(b[l]);
  }
  const Fe4 prod = mul4(fe4_from_lanes(an), fe4_from_lanes(bn));
  fe4_to_lanes(prod, r);
  return true;
}

bool x25519_x4_sq(const Fe a[4], Fe r[4]) {
  Fe an[4];
  for (int l = 0; l < 4; ++l) an[l] = loose_carry(a[l]);
  const Fe4 sq = sq4(fe4_from_lanes(an));
  fe4_to_lanes(sq, r);
  return true;
}

#else  // !__AVX2__

bool x25519_x4_compiled() noexcept { return false; }

void x25519_x4_ladder4(const std::uint8_t[4][32], const std::uint8_t* const[4],
                       std::uint8_t[4][32]) {
  // Dispatch guarantees this is unreachable without the kernels.
  std::abort();
}

bool x25519_x4_mul(const fe25519::Fe[4], const fe25519::Fe[4],
                   fe25519::Fe[4]) {
  return false;
}

bool x25519_x4_sq(const fe25519::Fe[4], fe25519::Fe[4]) { return false; }

#endif  // __AVX2__

}  // namespace shield5g::crypto::detail
