#include "crypto/cpu_dispatch.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace shield5g::crypto {

namespace {

// 0 = unset, 1 = scalar, 2 = accelerated. A single relaxed atomic keeps
// the per-call dispatch branch cheap and safe under monte_carlo's host
// threads.
std::atomic<int> g_forced{0};

struct CpuFeatures {
  bool aesni = false;
  bool shani = false;
  bool avx2 = false;
  bool avx512ifma = false;
};

#if defined(__x86_64__) || defined(__i386__)
// XCR0 via xgetbv; only legal once CPUID reports OSXSAVE.
std::uint64_t xcr0() noexcept {
  std::uint32_t lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}
#endif

CpuFeatures detect_features() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    const bool sse41 = (ecx & (1u << 19)) != 0;
    f.aesni = sse41 && (ecx & (1u << 25)) != 0;
    // The SHA-NI kernel also uses SSSE3 shuffles; leaf 1 ecx bit 9.
    const bool ssse3 = (ecx & (1u << 9)) != 0;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    // AVX2 needs the CPUID bit (leaf 7 ebx bit 5) *and* the OS saving
    // YMM state (XCR0 bits 1|2), or the first vpmuludq faults.
    const bool ymm_enabled = osxsave && (xcr0() & 0x6) == 0x6;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
      f.shani = sse41 && ssse3 && (ebx & (1u << 29)) != 0;
      f.avx2 = ymm_enabled && (ebx & (1u << 5)) != 0;
      // The IFMA ladder uses 256-bit vpmadd52 (IFMA+VL) and vpmullq
      // (DQ+VL); AVX-512 state needs XCR0 opmask|ZMM_Hi256|Hi16_ZMM
      // (bits 5-7) saved on top of YMM.
      const bool zmm_enabled = osxsave && (xcr0() & 0xe6) == 0xe6;
      const bool avx512f = (ebx & (1u << 16)) != 0;
      const bool avx512dq = (ebx & (1u << 17)) != 0;
      const bool avx512vl = (ebx & (1u << 31)) != 0;
      f.avx512ifma = zmm_enabled && avx512f && avx512dq && avx512vl &&
                     (ebx & (1u << 21)) != 0;
    }
  }
#endif
  return f;
}

const CpuFeatures& features() noexcept {
  static const CpuFeatures f = detect_features();
  return f;
}

CryptoBackend resolve_default() noexcept {
  const char* env = std::getenv("SHIELD5G_CRYPTO_BACKEND");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return CryptoBackend::kScalar;
    if (std::strcmp(env, "accel") == 0) return CryptoBackend::kAccelerated;
    // "auto" and anything unrecognized fall through to detection.
  }
  // The accelerated backend is worthwhile even without AES/SHA CPU bits:
  // it also selects the fixed-point X25519 path, which is portable.
  return CryptoBackend::kAccelerated;
}

}  // namespace

CryptoBackend active_backend() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced == 1) return CryptoBackend::kScalar;
  if (forced == 2) return CryptoBackend::kAccelerated;
  // One-time init is a C++11 magic static (as is features() above):
  // shard-pool workers racing into the first call serialize on the
  // guard and every later call is a plain load — TSan-clean, audited by
  // the MonteCarlo.* thread workloads. Tests that force_backend() must
  // do so before spawning workers; the forced flag itself is atomic.
  static const CryptoBackend resolved = resolve_default();
  return resolved;
}

void force_backend(CryptoBackend backend) noexcept {
  g_forced.store(backend == CryptoBackend::kScalar ? 1 : 2,
                 std::memory_order_relaxed);
}

void clear_forced_backend() noexcept {
  g_forced.store(0, std::memory_order_relaxed);
}

bool cpu_has_aesni() noexcept { return features().aesni; }
bool cpu_has_shani() noexcept { return features().shani; }
bool cpu_has_avx2() noexcept { return features().avx2; }
bool cpu_has_avx512ifma() noexcept { return features().avx512ifma; }

const char* backend_name(CryptoBackend backend) noexcept {
  return backend == CryptoBackend::kScalar ? "scalar" : "accel";
}

}  // namespace shield5g::crypto
