#include "crypto/cpu_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace shield5g::crypto {

namespace {

// 0 = unset, 1 = scalar, 2 = accelerated. A single relaxed atomic keeps
// the per-call dispatch branch cheap and safe under monte_carlo's host
// threads.
std::atomic<int> g_forced{0};

struct CpuFeatures {
  bool aesni = false;
  bool shani = false;
};

CpuFeatures detect_features() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    const bool sse41 = (ecx & (1u << 19)) != 0;
    f.aesni = sse41 && (ecx & (1u << 25)) != 0;
    // The SHA-NI kernel also uses SSSE3 shuffles; leaf 1 ecx bit 9.
    const bool ssse3 = (ecx & (1u << 9)) != 0;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
      f.shani = sse41 && ssse3 && (ebx & (1u << 29)) != 0;
    }
  }
#endif
  return f;
}

const CpuFeatures& features() noexcept {
  static const CpuFeatures f = detect_features();
  return f;
}

CryptoBackend resolve_default() noexcept {
  const char* env = std::getenv("SHIELD5G_CRYPTO_BACKEND");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return CryptoBackend::kScalar;
    if (std::strcmp(env, "accel") == 0) return CryptoBackend::kAccelerated;
    // "auto" and anything unrecognized fall through to detection.
  }
  // The accelerated backend is worthwhile even without AES/SHA CPU bits:
  // it also selects the fixed-point X25519 path, which is portable.
  return CryptoBackend::kAccelerated;
}

}  // namespace

CryptoBackend active_backend() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced == 1) return CryptoBackend::kScalar;
  if (forced == 2) return CryptoBackend::kAccelerated;
  // One-time init is a C++11 magic static (as is features() above):
  // shard-pool workers racing into the first call serialize on the
  // guard and every later call is a plain load — TSan-clean, audited by
  // the MonteCarlo.* thread workloads. Tests that force_backend() must
  // do so before spawning workers; the forced flag itself is atomic.
  static const CryptoBackend resolved = resolve_default();
  return resolved;
}

void force_backend(CryptoBackend backend) noexcept {
  g_forced.store(backend == CryptoBackend::kScalar ? 1 : 2,
                 std::memory_order_relaxed);
}

void clear_forced_backend() noexcept {
  g_forced.store(0, std::memory_order_relaxed);
}

bool cpu_has_aesni() noexcept { return features().aesni; }
bool cpu_has_shani() noexcept { return features().shani; }

const char* backend_name(CryptoBackend backend) noexcept {
  return backend == CryptoBackend::kScalar ? "scalar" : "accel";
}

}  // namespace shield5g::crypto
