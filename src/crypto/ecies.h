// ECIES Profile A (TS 33.501 Annex C.3): X25519 key agreement,
// ANSI X9.63 KDF with SHA-256, AES-128-CTR confidentiality and a 64-bit
// HMAC-SHA-256 MAC tag.
//
// The UE uses this to conceal its SUPI into a SUCI against the home
// network public key; the UDM's SIDF runs the reverse operation. There is
// no official 3GPP test vector for Profile A, so correctness here is
// established by round-trip and tamper-detection property tests plus the
// RFC 7748 vectors for the X25519 core.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "crypto/x25519.h"

namespace shield5g::crypto {

struct EciesCiphertext {
  Bytes ephemeral_public;  // 32 bytes
  Bytes ciphertext;        // same length as the plaintext
  Bytes mac_tag;           // 8 bytes

  /// Wire encoding: eph_pub || ciphertext || tag.
  Bytes serialize() const;
  static EciesCiphertext deserialize(ByteView data, std::size_t pt_len);
};

/// ANSI X9.63 KDF with SHA-256: counter-mode expansion of the shared
/// secret, with `shared_info` appended to each hash input. The shared
/// secret is tainted (DH output); the expansion is split into keys by
/// the caller.
Bytes x963_kdf(SecretView shared_secret, ByteView shared_info,
               std::size_t out_len);

/// Encrypts `plaintext` to the receiver's X25519 public key.
/// `ephemeral_random` supplies the 32 bytes of ephemeral-key entropy so
/// callers control determinism.
EciesCiphertext ecies_encrypt(ByteView receiver_public, ByteView plaintext,
                              ByteView ephemeral_random);

/// Variant consuming a pregenerated ephemeral key pair (see
/// crypto/eph_pool.h): skips the fixed-base multiplication and pays
/// only the shared-secret mult against the receiver key. Output is
/// identical to the entropy variant fed the same ephemeral scalar.
EciesCiphertext ecies_encrypt(ByteView receiver_public, ByteView plaintext,
                              const X25519KeyPair& ephemeral);

/// Variant consuming a pool-prepared pair whose shared secret against
/// `receiver_public` was already computed (EphemeralKeyPool's batched
/// acquire_shared): no scalar multiplication runs here at all. The
/// caller asserts that `prepared.shared` was formed against this
/// receiver key; output is identical to the other variants fed the
/// same ephemeral scalar.
EciesCiphertext ecies_encrypt(ByteView receiver_public, ByteView plaintext,
                              const X25519SharedKeyPair& prepared);

/// Decrypts; returns nullopt if the MAC tag does not verify. The
/// receiver's private scalar is the home-network secret.
std::optional<Bytes> ecies_decrypt(SecretView receiver_private,
                                   const EciesCiphertext& ct);

}  // namespace shield5g::crypto
