// Fixed-point X25519 via an Edwards comb (internal).
//
// The registration hot path multiplies two points over and over: the
// curve base point (every ephemeral keypair) and the peer's static
// public key (every client-side shared secret). For a point that
// repeats, we lift its Montgomery u-coordinate to edwards25519, build a
// 64-window x signed-4-bit comb table T[i][j] = j * 16^i * P (j = 1..8,
// affine entries) once, and replace each 255-double Montgomery ladder
// with 64 constant-time table scans and mixed additions. Points that do
// not lift (the curve's quadratic twist, or u = -1) keep the ladder.
//
// The output u-coordinate is bit-identical to the ladder's: both paths
// canonicalize the same field element. Virtual-time op counts are
// charged by the public x25519() entry point regardless of path.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/fe25519.h"

namespace shield5g::crypto::detail {

struct CombTable;  // opaque; ~60 KiB, heap-allocated

struct CombTableDeleter {
  void operator()(CombTable* t) const noexcept;
};
using CombTablePtr = std::unique_ptr<CombTable, CombTableDeleter>;

/// Lifts the Montgomery u-coordinate `u32` (32 bytes, little-endian) to
/// edwards25519 and builds the comb table. Returns nullptr when the
/// point is not liftable (twist point or exceptional u); callers must
/// then keep using the ladder for this point.
CombTablePtr comb_build(const std::uint8_t* u32);

/// Computes the u-coordinate of clamped_scalar * P where P is the point
/// the table was built from. `scalar32` must already be RFC 7748
/// clamped. Output matches the Montgomery ladder bit for bit.
void comb_eval(const CombTable& table, const std::uint8_t* scalar32,
               std::uint8_t* out_u32);

/// comb_eval up to (but not including) the final field inversion:
/// u = num/den. Lets callers that perform several scalar mults batch
/// the inversions (Montgomery's trick) — den may be zero for the
/// degenerate cases where comb_eval would canonicalize u to 0.
void comb_eval_fraction(const CombTable& table, const std::uint8_t* scalar32,
                        fe25519::Fe& num, fe25519::Fe& den);

}  // namespace shield5g::crypto::detail
