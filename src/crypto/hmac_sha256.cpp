#include "crypto/hmac_sha256.h"

#include <array>
#include <cstring>
#include <stdexcept>

#include "common/secret.h"
#include "crypto/sha256.h"

namespace shield5g::crypto {

namespace {

// Core with the message supplied as up to two parts; writes the full
// 32-byte MAC to `out` without allocating. Pads live on the stack and
// are wiped before returning.
void hmac_core_into(ByteView key, ByteView part1, const ByteView* part2,
                    std::uint8_t* out) {
  constexpr std::size_t kBlock = Sha256::kBlockSize;

  std::array<std::uint8_t, kBlock> k0{};
  if (key.size() > kBlock) {
    const Bytes digest = Sha256::digest(key);
    std::memcpy(k0.data(), digest.data(), digest.size());
  } else if (!key.empty()) {  // empty ByteView may carry a null pointer
    std::memcpy(k0.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlock> pad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    pad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x36);
  }
  Sha256 inner;
  inner.update(pad).update(part1);
  if (part2 != nullptr) inner.update(*part2);
  const auto inner_digest = inner.finalize();

  for (std::size_t i = 0; i < kBlock; ++i) {
    pad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x5c);
  }
  Sha256 outer;
  outer.update(pad).update(ByteView(inner_digest));
  const auto mac = outer.finalize();
  std::memcpy(out, mac.data(), mac.size());

  secure_zero(k0.data(), k0.size());
  secure_zero(pad.data(), pad.size());
}

Bytes hmac_core(ByteView key, ByteView part1, const ByteView* part2) {
  Bytes mac(Sha256::kDigestSize);
  hmac_core_into(key, part1, part2, mac.data());
  return mac;
}

}  // namespace

Bytes hmac_sha256(ByteView key, ByteView data) {
  return hmac_core(key, data, nullptr);
}

Bytes hmac_sha256(ByteView key, ByteView part1, ByteView part2) {
  return hmac_core(key, part1, &part2);
}

Bytes hmac_sha256_trunc(ByteView key, ByteView data, std::size_t n) {
  if (n > Sha256::kDigestSize) {
    throw std::invalid_argument("hmac_sha256_trunc: n > 32");
  }
  Bytes mac = hmac_core(key, data, nullptr);
  mac.resize(n);
  return mac;
}

Bytes hmac_sha256_trunc(ByteView key, ByteView part1, ByteView part2,
                        std::size_t n) {
  if (n > Sha256::kDigestSize) {
    throw std::invalid_argument("hmac_sha256_trunc: n > 32");
  }
  Bytes mac = hmac_core(key, part1, &part2);
  mac.resize(n);
  return mac;
}

void hmac_sha256_trunc_into(ByteView key, ByteView part1, ByteView part2,
                            std::uint8_t* out, std::size_t n) {
  if (n > Sha256::kDigestSize) {
    throw std::invalid_argument("hmac_sha256_trunc_into: n > 32");
  }
  std::array<std::uint8_t, Sha256::kDigestSize> mac;
  hmac_core_into(key, part1, &part2, mac.data());
  std::memcpy(out, mac.data(), n);
  secure_zero(mac.data(), mac.size());
}

}  // namespace shield5g::crypto
