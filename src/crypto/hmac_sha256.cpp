#include "crypto/hmac_sha256.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace shield5g::crypto {

Bytes hmac_sha256(ByteView key, ByteView data) {
  constexpr std::size_t kBlock = Sha256::kBlockSize;

  Bytes k0(key.begin(), key.end());
  if (k0.size() > kBlock) k0 = Sha256::digest(k0);
  k0.resize(kBlock, 0x00);

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad).update(data);
  const auto inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad).update(ByteView(inner_digest));
  const auto mac = outer.finalize();
  return Bytes(mac.begin(), mac.end());
}

Bytes hmac_sha256_trunc(ByteView key, ByteView data, std::size_t n) {
  if (n > Sha256::kDigestSize) {
    throw std::invalid_argument("hmac_sha256_trunc: n > 32");
  }
  Bytes mac = hmac_sha256(key, data);
  mac.resize(n);
  return mac;
}

}  // namespace shield5g::crypto
