#include "crypto/key_hierarchy.h"

#include <stdexcept>

#include "crypto/kdf.h"
#include "crypto/sha256.h"

namespace shield5g::crypto {

std::string serving_network_name(const std::string& mcc,
                                 const std::string& mnc) {
  // MNC is zero-padded to three digits in the SNN (TS 24.501).
  std::string mnc3 = mnc;
  while (mnc3.size() < 3) mnc3.insert(mnc3.begin(), '0');
  return "5G:mnc" + mnc3 + ".mcc" + mcc + ".3gppnetwork.org";
}

SecretBytes derive_kausf(SecretView ck, SecretView ik, const std::string& snn,
                         ByteView sqn_xor_ak) {
  if (ck.size() != 16 || ik.size() != 16 || sqn_xor_ak.size() != 6) {
    throw std::invalid_argument("derive_kausf: bad sizes");
  }
  // CK || IK is itself key material: hold it in tainted storage so the
  // concat is zeroized on scope exit.
  const SecretBytes key(concat({ck.unsafe_bytes(), ik.unsafe_bytes()}));
  return SecretBytes(
      kdf(key, 0x6A,
          {{to_bytes(snn)}, {Bytes(sqn_xor_ak.begin(), sqn_xor_ak.end())}}));
}

Bytes derive_res_star(SecretView ck, SecretView ik, const std::string& snn,
                      ByteView rand, ByteView res) {
  if (ck.size() != 16 || ik.size() != 16 || rand.size() != 16) {
    throw std::invalid_argument("derive_res_star: bad sizes");
  }
  const SecretBytes key(concat({ck.unsafe_bytes(), ik.unsafe_bytes()}));
  return kdf_trunc128(key, 0x6B,
                      {{to_bytes(snn)},
                       {Bytes(rand.begin(), rand.end())},
                       {Bytes(res.begin(), res.end())}});
}

Bytes derive_hxres_star(ByteView rand, ByteView xres_star,
                        std::size_t out_len) {
  if (rand.size() != 16) {
    throw std::invalid_argument("derive_hxres_star: RAND size");
  }
  if (out_len > Sha256::kDigestSize) {
    throw std::invalid_argument("derive_hxres_star: out_len too long");
  }
  const Bytes digest = Sha256::digest(concat({rand, xres_star}));
  return take(digest, out_len);
}

SecretBytes derive_kseaf(SecretView kausf, const std::string& snn) {
  if (kausf.size() != 32) throw std::invalid_argument("derive_kseaf: size");
  return SecretBytes(kdf(kausf, 0x6C, {{to_bytes(snn)}}));
}

SecretBytes derive_kamf(SecretView kseaf, const std::string& supi,
                        ByteView abba) {
  if (kseaf.size() != 32 || abba.size() != 2) {
    throw std::invalid_argument("derive_kamf: bad sizes");
  }
  return SecretBytes(kdf(kseaf, 0x6D,
                         {{to_bytes(supi)}, {Bytes(abba.begin(), abba.end())}}));
}

SecretBytes derive_algo_key(SecretView kamf, AlgoType type,
                            std::uint8_t algo_id) {
  if (kamf.size() != 32) throw std::invalid_argument("derive_algo_key: size");
  return SecretBytes(kdf_trunc128(
      kamf, 0x69,
      {{Bytes{static_cast<std::uint8_t>(type)}}, {Bytes{algo_id}}}));
}

SecretBytes derive_kgnb(SecretView kamf, std::uint32_t uplink_nas_count,
                        std::uint8_t access_type) {
  if (kamf.size() != 32) throw std::invalid_argument("derive_kgnb: size");
  Bytes count(4);
  for (int i = 0; i < 4; ++i) {
    count[3 - i] = static_cast<std::uint8_t>(uplink_nas_count >> (8 * i));
  }
  return SecretBytes(kdf(kamf, 0x6E, {{count}, {Bytes{access_type}}}));
}

}  // namespace shield5g::crypto
