#include "load/serving.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/buffer_pool.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "nf/subscriber_store.h"
#include "sim/shard_pool.h"
#include "sim/spsc_mailbox.h"

namespace shield5g::load {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             // det-audited(steady_clock feeds serving wall-time reporting only; per-slot digests never include timestamps)
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// What crosses a mailbox: one arrival, already translated to the home
/// slot's local subscriber index.
struct Routed {
  std::uint32_t local_ue = 0;
  sim::Nanos at = 0;
};

/// Golden-ratio mix so per-slot seed domains never collide with the
/// slice's own derived streams (0xc4ed credentials, 0xa221 arrivals...).
std::uint64_t slot_mix(std::uint64_t seed, std::uint32_t slot) noexcept {
  return seed ^ (0x517eBA5EULL + 0x9e3779b97f4a7c15ULL *
                                     (static_cast<std::uint64_t>(slot) + 1));
}

/// One slot's actor run: fresh slice over the slot's population, the
/// routed arrival share replayed through the explicit-arrival engine.
/// Mirrors sweep.cpp's run_case so the result feeds the same digest.
SweepResult run_slot(const ServingConfig& config, std::uint32_t slot,
                     std::vector<std::uint32_t> population,
                     const std::vector<Arrival>& arrivals) {
  SweepResult out;
  char label[32];
  std::snprintf(label, sizeof(label), "slot=%u", slot);
  out.label = label;

  slice::SliceConfig sc = config.slice;
  sc.subscriber_count = static_cast<std::uint32_t>(population.size());
  sc.population = std::move(population);
  sc.seed = slot_mix(config.slice.seed, slot);
  slice::Slice slice(sc);
  slice.create();

  LoadConfig lc;
  lc.ue_count = static_cast<std::uint32_t>(arrivals.size());
  lc.arrivals = config.arrivals;
  lc.with_pdu = config.with_pdu;
  lc.record_trace = config.record_trace;
  lc.seed = slot_mix(config.seed, slot);

  const auto stage_before = hot_stage::thread_snapshot();
  const double t0 = now_ms();
  LoadGenerator generator;
  out.report = generator.run(slice, lc, arrivals);
  const double t1 = now_ms();
  const auto stage_after = hot_stage::thread_snapshot();

  out.run_wall_ms = t1 - t0;
  for (int i = 0; i < kHotStageCount; ++i) {
    out.stage_ns[i] = stage_after[i] - stage_before[i];
  }
  out.queues = queue_snapshots(slice);
  for (const QueueSnapshot& q : out.queues) out.shed += q.rejected;
  // Fold this worker's pool stats into the wire.pool.* counters; global
  // counters never feed case digests, so this is digest-neutral.
  BufferPool::publish_thread_stats();
  return out;
}

}  // namespace

std::uint32_t home_slot(std::string_view supi, std::uint32_t slots) noexcept {
  return static_cast<std::uint32_t>(nf::supi_hash(supi) % slots);
}

ServingReport run_serving(const ServingConfig& config, unsigned shards) {
  const std::uint32_t slots = config.slots == 0 ? 1 : config.slots;
  unsigned workers = sim::shard_workers(shards);
  if (workers > slots) workers = slots;

  // ---- Partition (before any thread exists, so it cannot depend on
  // the execution width): global id -> home slot by SUPI hash, local
  // index = rank within the slot's ascending-id population. ----------
  std::vector<std::vector<std::uint32_t>> populations(slots);
  std::vector<std::uint32_t> slot_of(config.ue_count);
  std::vector<std::uint32_t> local_of(config.ue_count);
  for (std::uint32_t gid = 0; gid < config.ue_count; ++gid) {
    char msin[16];
    std::snprintf(msin, sizeof(msin), "%010u", 100000000u + gid);
    const nf::Supi supi =
        nf::Supi::from_parts(config.slice.plmn, msin);
    const std::uint32_t slot = home_slot(supi.value, slots);
    slot_of[gid] = slot;
    local_of[gid] = static_cast<std::uint32_t>(populations[slot].size());
    populations[slot].push_back(gid);
  }

  // One global arrival schedule (same domain separation as the
  // open-loop engine); arrival i belongs to global id i.
  Rng arrivals_rng(config.seed ^ 0xa221ULL);
  const std::vector<sim::Nanos> schedule =
      arrival_schedule(config.arrivals, config.ue_count, arrivals_rng);

  std::vector<std::unique_ptr<sim::SpscMailbox<Routed>>> mailboxes;
  mailboxes.reserve(slots);
  for (std::uint32_t s = 0; s < slots; ++s) {
    mailboxes.push_back(std::make_unique<sim::SpscMailbox<Routed>>(
        config.mailbox_capacity == 0 ? 1 : config.mailbox_capacity));
  }

  // Per-slot results land at disjoint indices (slot ownership is a
  // partition), so the vector needs no lock; errors are the only state
  // workers share.
  std::vector<SweepResult> results(slots);
  struct ErrorBox {
    std::mutex mutex;
    std::exception_ptr first SHIELD_GUARDED_BY(mutex);
  } errors;

  const double t0 = now_ms();

  // ---- Consumers: worker w owns slots {s : s % workers == w}. Each
  // drains ALL its mailboxes while the router is still pushing (a
  // worker that served first and drained later could deadlock the
  // bounded rings), then serves its slots in ascending slot order. ----
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      std::vector<std::uint32_t> owned;
      for (std::uint32_t s = w; s < slots; s += workers) owned.push_back(s);
      std::vector<std::vector<Arrival>> share(owned.size());
      bool streaming = true;
      while (streaming) {
        bool progress = false;
        streaming = false;
        for (std::size_t i = 0; i < owned.size(); ++i) {
          auto& mb = *mailboxes[owned[i]];
          Routed r;
          while (mb.try_pop(r)) {
            share[i].push_back(Arrival{r.local_ue, r.at});
            progress = true;
          }
          if (!mb.drained()) streaming = true;
        }
        if (streaming && !progress) std::this_thread::yield();
      }
      for (std::size_t i = 0; i < owned.size(); ++i) {
        try {
          results[owned[i]] = run_slot(config, owned[i],
                                       populations[owned[i]], share[i]);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(errors.mutex);
          if (!errors.first) errors.first = std::current_exception();
        }
      }
    });
  }

  // ---- Router (caller thread): arrivals stream to their home shard in
  // global time order; a full mailbox back-pressures, never drops. ----
  std::uint64_t backpressure = 0;
  for (std::uint32_t gid = 0; gid < config.ue_count; ++gid) {
    auto& mb = *mailboxes[slot_of[gid]];
    const Routed r{local_of[gid], schedule[gid]};
    while (!mb.try_push(r)) {
      ++backpressure;
      std::this_thread::yield();
    }
  }
  for (auto& mb : mailboxes) mb->close();
  for (std::thread& t : pool) t.join();

  const double t1 = now_ms();

  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(errors.mutex);
    error = errors.first;
  }
  if (error) std::rethrow_exception(error);

  counter_add("serve.routed", config.ue_count);
  counter_add("serve.mailbox.backpressure", backpressure);

  ServingReport report;
  report.shards = workers;
  report.routed = config.ue_count;
  report.backpressure = backpressure;
  report.wall_ms = t1 - t0;
  for (const SweepResult& r : results) {
    report.completed += r.report.completed;
    report.registered += r.report.registered;
    report.sessions_up += r.report.sessions_up;
    report.failed += r.report.failed;
    report.failed_shed += r.report.failed_shed;
    report.failed_error += r.report.failed_error;
    report.shed += r.shed;
    report.fastpath_hits += r.fastpath_hits;
  }
  if (report.wall_ms > 0) {
    report.regs_per_s = 1000.0 * report.registered / report.wall_ms;
  }
  // The merge: slot order, same digest machinery as run_sweep — this is
  // what serve-smoke byte-compares across shard counts.
  report.digest = sweep_digest(results);
  report.digest_lines = sweep_digest_lines(results);
  report.slots = std::move(results);
  return report;
}

}  // namespace shield5g::load
