#include "load/sweep.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/buffer_pool.h"
#include "sim/shard_pool.h"

namespace shield5g::load {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             // det-audited(steady_clock feeds sweep wall-time reporting only; digests never include timestamps)
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SweepResult run_case(const SweepCase& c) {
  SweepResult out;
  out.label = c.label;

  slice::Slice slice(c.slice);
  slice.create();

  const auto stage_before = hot_stage::thread_snapshot();
  const double t0 = now_ms();
  LoadGenerator generator;
  out.report = generator.run(slice, c.load);
  const double t1 = now_ms();
  const auto stage_after = hot_stage::thread_snapshot();

  out.run_wall_ms = t1 - t0;
  for (int i = 0; i < kHotStageCount; ++i) {
    out.stage_ns[i] = stage_after[i] - stage_before[i];
  }
  out.queues = queue_snapshots(slice);
  for (const QueueSnapshot& q : out.queues) out.shed += q.rejected;
  out.fastpath_hits = slice.bus().fastpath_hits();
  // Fold this worker's pool stats into the wire.pool.* counters. Global
  // counters never feed case_digest, so this is digest-neutral.
  BufferPool::publish_thread_stats();
  return out;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, sizeof(v)); }

void fnv_samples(std::uint64_t& h, const Samples& s) {
  for (const double v : s.values()) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    fnv_u64(h, bits);
  }
}

// The deterministic payload of one case, fed to both the digest and the
// CI diff lines. Doubles go through their bit patterns — "bit-identical"
// means exactly that, not approximately-equal-after-printf.
std::uint64_t case_digest(const SweepResult& r) {
  std::uint64_t h = kFnvOffset;
  fnv_bytes(h, r.label.data(), r.label.size());
  fnv_u64(h, r.report.trace_hash);
  fnv_u64(h, r.report.completed);
  fnv_u64(h, r.report.registered);
  fnv_u64(h, r.report.sessions_up);
  fnv_u64(h, r.report.failed);
  fnv_u64(h, r.report.failed_shed);
  fnv_u64(h, r.report.failed_error);
  fnv_u64(h, r.report.makespan);
  fnv_samples(h, r.report.setup_ms);
  fnv_samples(h, r.report.arrival_ms);
  fnv_u64(h, r.shed);
  for (const QueueSnapshot& q : r.queues) {
    fnv_bytes(h, q.server.data(), q.server.size());
    fnv_u64(h, q.workers);
    fnv_u64(h, q.admitted);
    fnv_u64(h, q.queued);
    fnv_u64(h, q.rejected);
    fnv_u64(h, q.total_wait);
  }
  return h;
}

}  // namespace

std::vector<SweepResult> run_sweep(const std::vector<SweepCase>& cases,
                                   unsigned workers) {
  sim::ShardPool pool(workers);
  return pool.map(cases.size(),
                  [&cases](std::size_t i) { return run_case(cases[i]); });
}

std::uint64_t sweep_digest(const std::vector<SweepResult>& results) {
  std::uint64_t h = kFnvOffset;
  for (const SweepResult& r : results) fnv_u64(h, case_digest(r));
  return h;
}

std::vector<std::string> sweep_digest_lines(
    const std::vector<SweepResult>& results) {
  std::vector<std::string> lines;
  lines.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "case=%zu label=%s digest=%016" PRIx64 " trace=%016" PRIx64
                  " registered=%u failed=%u failed_shed=%u failed_error=%u"
                  " makespan=%" PRIu64 " shed=%" PRIu64,
                  i, r.label.c_str(), case_digest(r), r.report.trace_hash,
                  r.report.registered, r.report.failed, r.report.failed_shed,
                  r.report.failed_error, r.report.makespan, r.shed);
    lines.emplace_back(buf);
  }
  return lines;
}

}  // namespace shield5g::load
