// Parallel seed/rate/mode sweeps over the open-loop registration engine.
//
// A sweep is a list of fully independent experiment cases — each one a
// complete slice deployment plus a load configuration, i.e. one shard
// in the sense of sim/shard_pool.h. run_sweep() executes them on the
// shard pool and returns results in case order, so the sweep's output
// is bit-identical to running the cases sequentially whatever
// SHIELD5G_SHARD_WORKERS says (tests/determinism_test.cpp proves it;
// bench/shard_scaling measures the wall-clock scaling).
//
// Per-case wall time and hot-stage deltas are measured on the worker
// that ran the case (hot-stage buckets are thread-local), so stage
// attribution stays exact even with eight shards in flight.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hot_stage.h"
#include "load/generator.h"
#include "slice/slice.h"

namespace shield5g::load {

struct SweepCase {
  /// Free-form tag carried through to the result (mode/rate/seed).
  std::string label;
  slice::SliceConfig slice;
  LoadConfig load;
};

struct SweepResult {
  std::string label;
  LoadReport report;
  /// Post-run admission-queue state of every well-known server.
  std::vector<QueueSnapshot> queues;
  /// Requests shed across all queues (the NGAP silent-drop count).
  std::uint64_t shed = 0;
  /// Co-located fast-path deliveries this case's bus performed (zero in
  /// container/SGX modes and under SHIELD5G_BUS_FASTPATH=off). Excluded
  /// from case_digest — the digest must match fast path on vs off.
  std::uint64_t fastpath_hits = 0;
  /// Host milliseconds inside LoadGenerator::run for this case (slice
  /// construction and provisioning excluded, as in bench/throughput).
  double run_wall_ms = 0.0;
  /// This case's exclusive hot-stage nanoseconds (zeros unless
  /// hot_stage collection is enabled).
  std::array<std::uint64_t, kHotStageCount> stage_ns{};
};

/// Runs every case — one fresh slice each — and returns the results in
/// case order. `workers` as in sim::shard_workers (0 = env, then
/// hardware concurrency; 1 = sequential).
std::vector<SweepResult> run_sweep(const std::vector<SweepCase>& cases,
                                   unsigned workers = 0);

/// Order-sensitive FNV-1a digest over everything deterministic in the
/// results: per-case trace hashes, counters, makespans, shed counts and
/// the bit patterns of every latency sample. Two sweeps are
/// bit-identical iff their digests match; wall-clock fields are
/// excluded by construction.
std::uint64_t sweep_digest(const std::vector<SweepResult>& results);

/// One line per case of the digest's inputs ("case=0 label=... trace=
/// ..."), for byte-for-byte diffing across worker counts in CI.
std::vector<std::string> sweep_digest_lines(
    const std::vector<SweepResult>& results);

}  // namespace shield5g::load
