// Multi-threaded Monte Carlo runner for seed sweeps.
//
// Each job builds its own fully independent simulation (slice, clock,
// RNGs) and stays single-threaded and deterministic; real host threads
// only fan the *independent* jobs out across cores. Results land in an
// index-addressed vector, so the aggregate is byte-identical regardless
// of thread count or completion order.
//
// Since the shard-runner PR this is a thin veneer over sim::ShardPool:
// `threads = 0` resolves through SHIELD5G_SHARD_WORKERS before falling
// back to hardware concurrency, and typed registration sweeps should
// prefer load::run_sweep (load/sweep.h), which also captures queue
// snapshots and per-shard stage profiles.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/shard_pool.h"

namespace shield5g::load {

/// Runs `fn(i)` for i in [0, jobs) on up to `threads` host workers
/// (0 = SHIELD5G_SHARD_WORKERS, then hardware concurrency) and returns
/// the results in job order.
template <typename Fn>
auto monte_carlo(std::size_t jobs, Fn fn, unsigned threads = 0)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using Result = decltype(fn(std::size_t{}));
  std::vector<Result> results(jobs);
  if (jobs == 0) return results;
  sim::ShardPool pool(threads);
  pool.run(jobs, [&results, &fn](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace shield5g::load
