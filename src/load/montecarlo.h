// Multi-threaded Monte Carlo runner for seed sweeps.
//
// Each job builds its own fully independent simulation (slice, clock,
// RNGs) and stays single-threaded and deterministic; real host threads
// only fan the *independent* jobs out across cores. Results land in an
// index-addressed vector, so the aggregate is byte-identical regardless
// of thread count or completion order.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace shield5g::load {

/// Runs `fn(i)` for i in [0, jobs) on up to `threads` host threads
/// (0 = hardware concurrency) and returns the results in job order.
template <typename Fn>
auto monte_carlo(std::size_t jobs, Fn fn, unsigned threads = 0)
    -> std::vector<decltype(fn(std::size_t{}))> {
  using Result = decltype(fn(std::size_t{}));
  std::vector<Result> results(jobs);
  if (jobs == 0) return results;

  unsigned workers = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > jobs) workers = static_cast<unsigned>(jobs);

  if (workers == 1) {
    for (std::size_t i = 0; i < jobs; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&results, &next, &fn, jobs] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs) return;
        results[i] = fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace shield5g::load
