#include "load/generator.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "crypto/eph_pool.h"
#include "ran/ue.h"
#include "sim/scheduler.h"

namespace shield5g::load {

namespace {

// Round caps shared with GnbSim::drive — a wedged UE terminates.
constexpr int kMaxRegistrationRounds = 16;
constexpr int kMaxTotalRounds = 24;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Visits every well-known server of the slice (core VNFs and deployed
/// P-AKA modules) in a fixed deterministic order. Shared by the shed
/// classifier below and queue_snapshots().
template <typename Fn>
void for_each_server(slice::Slice& slice, Fn&& fn) {
  fn("amf", &slice.amf().server());
  fn("ausf", &slice.ausf().server());
  fn("udm", &slice.udm().server());
  fn("udr", &slice.udr().server());
  fn("smf", &slice.smf().server());
  fn("nrf", &slice.nrf().server());
  for (const auto& replica : slice.eudm_replicas()) {
    fn(replica->name(), &replica->server());
  }
  if (slice.eausf() != nullptr) fn(slice.eausf()->name(),
                                   &slice.eausf()->server());
  if (slice.eamf() != nullptr) fn(slice.eamf()->name(),
                                  &slice.eamf()->server());
}

class Engine;

/// One UE's registration as a chain of scheduled exchanges. Each step
/// runs one synchronous NAS exchange inside a clock span; the UE then
/// "sleeps" until the exchange's completion instant.
class UeSession {
 public:
  UeSession(Engine& engine, std::uint32_t index, ran::UeDevice ue,
            bool with_pdu)
      : engine_(engine), index_(index), ue_(std::move(ue)),
        with_pdu_(with_pdu) {}

  void start();

 private:
  enum class Phase { kRegistering, kPdu };

  void step();
  void resume();
  void finish();

  Engine& engine_;
  std::uint32_t index_;
  ran::UeDevice ue_;
  bool with_pdu_;
  Phase phase_ = Phase::kRegistering;
  bool attached_ = false;
  bool shed_ = false;
  std::uint64_t ran_ue_id_ = 0;
  std::optional<Bytes> uplink_;
  int rounds_ = 0;
  sim::Nanos arrival_ = 0;
};

class Engine {
 public:
  Engine(slice::Slice& slice, const LoadConfig& config)
      : slice_(slice), config_(config), scheduler_(slice.clock()) {}

  LoadReport run();

  slice::Slice& slice() noexcept { return slice_; }
  sim::VirtualClock& clock() noexcept { return slice_.clock(); }
  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  ran::Gnb& gnb() noexcept { return slice_.gnb(); }
  LoadReport& report() noexcept { return report_; }
  sim::Nanos run_start() const noexcept { return run_start_; }

  /// Sum of queue rejections across the slice's servers. An exchange
  /// chain runs synchronously inside one scheduled event, so a UE that
  /// snapshots this around its own exchange observes exactly the
  /// rejections that chain caused — the basis of the shed/error split.
  std::uint64_t total_rejected() const noexcept {
    std::uint64_t total = 0;
    for (const net::ServiceQueue* queue : queues_) total += queue->rejected();
    return total;
  }

  void trace(std::uint32_t ue, const char* what) {
    char line[96];
    std::snprintf(line, sizeof(line), "t=%" PRIu64 " ue=%u %s",
                  clock().now() - run_start_, ue, what);
    for (const char* p = line; *p != '\0'; ++p) {
      trace_hash_ = (trace_hash_ ^ static_cast<std::uint8_t>(*p)) * kFnvPrime;
    }
    trace_hash_ *= kFnvPrime;  // line separator
    if (config_.record_trace) report_.trace.emplace_back(line);
  }

 private:
  slice::Slice& slice_;
  const LoadConfig& config_;
  sim::Scheduler scheduler_;
  LoadReport report_;
  std::vector<std::unique_ptr<UeSession>> sessions_;
  std::vector<const net::ServiceQueue*> queues_;
  sim::Nanos run_start_ = 0;
  std::uint64_t trace_hash_ = kFnvOffset;

 public:
  LoadReport take_report() {
    report_.trace_hash = trace_hash_;
    return std::move(report_);
  }

  void build_and_schedule(const std::vector<Arrival>* routed) {
    if (!slice_.created()) {
      throw std::logic_error("LoadGenerator: slice must be created first");
    }
    run_start_ = clock().now();
    queues_.clear();
    for_each_server(slice_, [this](const auto&, net::Server* server) {
      if (server != nullptr) queues_.push_back(&server->queue());
    });
    std::vector<std::pair<std::uint32_t, sim::Nanos>> plan;
    if (routed != nullptr) {
      // Externally routed arrivals (the sharded serving plane): the
      // schedule was drawn once globally; this slice replays its share.
      plan.reserve(routed->size());
      for (const Arrival& a : *routed) {
        plan.emplace_back(a.ue, run_start_ + a.at);
      }
    } else {
      if (config_.ue_count > slice_.subscriber_capacity()) {
        throw std::invalid_argument(
            "LoadGenerator: ue_count exceeds provisioned subscribers");
      }
      Rng arrivals_rng(config_.seed ^ 0xa221ULL);
      const std::vector<sim::Nanos> schedule =
          arrival_schedule(config_.arrivals, config_.ue_count, arrivals_rng);
      plan.reserve(config_.ue_count);
      for (std::uint32_t i = 0; i < config_.ue_count; ++i) {
        plan.emplace_back(i, run_start_ + schedule[i]);
      }
    }
    schedule_plan(plan);
  }

  /// Schedules every planned session; when several arrivals land on the
  /// same scheduler tick, a prewarm event is inserted before the first
  /// of them (FIFO tie-break on equal timestamps) so the burst's SUCI
  /// conceals consume shared secrets the pool batched 4-wide through
  /// x25519_batch instead of each paying a serial mult. The prewarm is
  /// off the op meter, so virtual-time results are unchanged.
  void schedule_plan(
      const std::vector<std::pair<std::uint32_t, sim::Nanos>>& plan) {
    sessions_.reserve(sessions_.size() + plan.size());
    // The whole arrival schedule lands in the scheduler up front (plus
    // a prewarm event per burst tick); size the event storage once.
    scheduler_.reserve(plan.size() + 8);
    crypto::EphemeralKeyPool* pool = slice_.eph_pool();
    std::unordered_map<sim::Nanos, std::uint32_t> tick_count;
    if (pool != nullptr) {
      for (const auto& p : plan) ++tick_count[p.second];
    }
    for (const auto& p : plan) {
      if (pool != nullptr) {
        const auto it = tick_count.find(p.second);
        if (it != tick_count.end()) {
          const std::uint32_t burst = it->second;
          tick_count.erase(it);  // one prewarm per tick, at first arrival
          if (burst >= 2) {
            slice::Slice* slice = &slice_;
            scheduler_.at(p.second, [slice, pool, burst] {
              pool->prewarm_shared(ByteView(slice->hn_public()), burst);
            });
          }
        }
      }
      schedule_session(p.first, p.second);
    }
  }

  void schedule_session(std::uint32_t ue, sim::Nanos at) {
    if (ue >= slice_.subscriber_capacity()) {
      throw std::invalid_argument(
          "LoadGenerator: arrival references an unprovisioned subscriber");
    }
    // Same per-UE device seeding as Slice::register_subscriber, so a
    // 1-UE open-loop run replays the closed-loop byte flow.
    sessions_.push_back(std::make_unique<UeSession>(
        *this, ue,
        ran::UeDevice(slice_.subscriber(ue),
                      slice_.config().seed ^ (0x0eULL + ue),
                      slice_.eph_pool()),
        config_.with_pdu));
    UeSession* session = sessions_.back().get();
    scheduler_.at(at, [session] { session->start(); });
  }

  void drain() { scheduler_.run(); }
};

void UeSession::start() {
  arrival_ = engine_.clock().now();
  engine_.report().arrival_ms.add(sim::to_ms(arrival_ - engine_.run_start()));
  engine_.trace(index_, "arrive");
  step();
}

void UeSession::step() {
  sim::ClockSpan span(engine_.clock());
  if (!attached_) {
    ran_ue_id_ = engine_.gnb().attach_ue();
    uplink_ = ue_.start_registration();
    attached_ = true;
  }
  const std::uint64_t rejected_before = engine_.total_rejected();
  const auto downlink = engine_.gnb().deliver_uplink(ran_ue_id_, *uplink_);
  if (engine_.total_rejected() != rejected_before) shed_ = true;
  std::optional<Bytes> next;
  if (downlink) next = ue_.handle_downlink(*downlink);
  ++rounds_;
  uplink_ = std::move(next);
  const sim::Nanos done_at = span.start() + span.close();
  engine_.scheduler().at(done_at, [this] { resume(); });
}

void UeSession::resume() {
  engine_.trace(index_, phase_ == Phase::kRegistering ? "reg-round"
                                                      : "pdu-round");
  if (phase_ == Phase::kRegistering) {
    if (uplink_ && rounds_ < kMaxRegistrationRounds) {
      step();
      return;
    }
    if (ue_.state() == ran::UeNasState::kRegistered && with_pdu_) {
      phase_ = Phase::kPdu;
      uplink_ = ue_.request_pdu_session();
      step();
      return;
    }
    finish();
    return;
  }
  if (uplink_ && rounds_ < kMaxTotalRounds) {
    step();
    return;
  }
  finish();
}

void UeSession::finish() {
  LoadReport& report = engine_.report();
  ++report.completed;
  const bool registered = ue_.state() == ran::UeNasState::kRegistered ||
                          ue_.state() == ran::UeNasState::kSessionUp;
  const bool session_up = ue_.state() == ran::UeNasState::kSessionUp;
  if (registered) {
    ++report.registered;
    report.setup_ms.add(sim::to_ms(engine_.clock().now() - arrival_));
  } else {
    ++report.failed;
    if (shed_) {
      ++report.failed_shed;
    } else {
      ++report.failed_error;
    }
  }
  if (session_up) ++report.sessions_up;
  engine_.trace(index_,
                registered ? (session_up ? "done session-up"
                                         : "done registered")
                           : (shed_ ? "done failed-shed"
                                    : "done failed-error"));
}

}  // namespace

namespace {

LoadReport run_engine(slice::Slice& slice, const LoadConfig& config,
                      const std::vector<Arrival>* routed) {
  Engine engine(slice, config);
  engine.build_and_schedule(routed);
  engine.drain();
  LoadReport report = engine.take_report();
  report.offered_rate_per_s = config.arrivals.rate_per_s;
  report.makespan = slice.clock().now() - engine.run_start();
  if (report.makespan > 0) {
    report.achieved_rate_per_s =
        static_cast<double>(report.registered) / sim::to_s(report.makespan);
  }
  return report;
}

}  // namespace

LoadReport LoadGenerator::run(slice::Slice& slice, const LoadConfig& config) {
  return run_engine(slice, config, nullptr);
}

LoadReport LoadGenerator::run(slice::Slice& slice, const LoadConfig& config,
                              const std::vector<Arrival>& arrivals) {
  return run_engine(slice, config, &arrivals);
}

std::string LoadReport::summary() const {
  char buf[256];
  // An empty run (no UE registered) has no setup distribution to quote.
  const double p50 = setup_ms.empty() ? 0.0 : setup_ms.median();
  const double p95 = setup_ms.empty() ? 0.0 : setup_ms.percentile(95.0);
  std::snprintf(buf, sizeof(buf),
                "%u/%u registered (%u sessions, %u failed: %u shed, %u error), "
                "offered %.0f/s, achieved %.0f/s, setup p50 %.2f ms "
                "p95 %.2f ms",
                registered, completed, sessions_up, failed, failed_shed,
                failed_error, offered_rate_per_s, achieved_rate_per_s, p50,
                p95);
  return buf;
}

std::vector<QueueSnapshot> queue_snapshots(slice::Slice& slice) {
  std::vector<QueueSnapshot> snapshots;
  auto add = [&snapshots](std::string name, net::Server* server) {
    if (server == nullptr) return;
    const net::ServiceQueue& queue = server->queue();
    QueueSnapshot snap;
    snap.server = name;
    snap.workers = queue.config().workers;
    snap.admitted = queue.admitted();
    snap.queued = queue.queued();
    snap.rejected = queue.rejected();
    if (!queue.wait_us().empty()) {
      snap.wait_p50_us = queue.wait_us().median();
      snap.wait_max_us = queue.wait_us().max();
    }
    snap.total_wait = queue.total_wait();
    snapshots.push_back(std::move(snap));
  };
  for_each_server(slice, add);
  return snapshots;
}

}  // namespace shield5g::load
