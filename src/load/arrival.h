// Open-loop arrival processes for the workload generator.
//
// Open-loop means arrivals are drawn from a process that does not react
// to the system's progress — the defining property of production load
// (UEs power on when their users do, not when the core is ready). The
// generator pre-draws the whole arrival schedule from a seeded RNG, so
// a run is fully determined by (seed, config).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/clock.h"

namespace shield5g::load {

enum class ArrivalKind {
  kPoisson,  // exponential inter-arrival gaps (memoryless offered load)
  kUniform,  // evenly spaced arrivals at the offered rate
  kBurst,    // groups of `burst_size` simultaneous arrivals, spaced so
             // the long-run rate matches `rate_per_s`
};

const char* arrival_kind_name(ArrivalKind kind) noexcept;

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_per_s = 100.0;      // long-run offered registrations/s
  std::uint32_t burst_size = 10;  // kBurst only
};

/// Draws the absolute arrival instants (relative to the schedule start)
/// for `count` arrivals. Instants are non-decreasing.
std::vector<sim::Nanos> arrival_schedule(const ArrivalConfig& config,
                                         std::uint32_t count, Rng& rng);

}  // namespace shield5g::load
