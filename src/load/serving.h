// SUPI-sharded serving plane: actor-style NF shards over a fixed
// home-slot partition.
//
// run_sweep (PR 4) parallelizes *independent experiments*; this runs
// ONE experiment's live serving path on many cores. The subscriber
// space is partitioned by SUPI hash into a fixed number of home slots
// (kServingSlots by default). Each slot is an actor: a complete slice
// deployment owning a disjoint share of UE/subscriber state — its own
// columnar UDR store, UDM/AMF context tables, virtual clock, scheduler
// and SBI bus. Nothing is shared between slots, so no lock ever guards
// serving-path state.
//
// Execution separates the *partition* (slots, fixed) from the
// *width* (shards = worker threads, 1..slots): worker w owns slots
// {s : s % shards == w}. The caller thread draws one global arrival
// schedule and routes each arrival through the owning worker's
// fixed-capacity SPSC mailbox (sim/spsc_mailbox.h); workers drain their
// mailboxes concurrently, then run each owned slot's engine through the
// explicit-arrival LoadGenerator entry.
//
// Determinism contract (DESIGN.md §16): each slot's result is a pure
// function of (slot seed, population, routed arrivals) — all derived
// before any thread runs — and per-slot results merge in slot order
// through the same case-digest machinery run_sweep uses. The merged
// digest is therefore byte-identical at 1/2/4/8 shards and across
// back-to-back cold starts (tests/determinism_test.cpp proves it;
// bench/serving_plane measures the wall-clock scaling).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "load/sweep.h"

namespace shield5g::load {

/// Fixed logical partition width. The digest is a function of the slot
/// layout, so this is a protocol constant, not a tuning knob: changing
/// it re-partitions subscriber state (like resizing a consistent-hash
/// ring) and legitimately changes per-slot traces.
inline constexpr std::uint32_t kServingSlots = 8;

struct ServingConfig {
  /// Per-slot deployment template. population/subscriber_count/seed are
  /// overridden per slot; everything else (mode, keep_alive, resumption,
  /// vnf workers, cost models) applies to every slot.
  slice::SliceConfig slice;
  /// Global UE count across the whole plane (ids [0, ue_count)).
  std::uint32_t ue_count = 64;
  /// Global arrival process; one schedule is drawn and then routed.
  ArrivalConfig arrivals;
  bool with_pdu = true;
  std::uint64_t seed = 0x5e47eULL;
  std::uint32_t slots = kServingSlots;
  /// Per-slot mailbox capacity; a full mailbox back-pressures the
  /// router (counted, never dropped).
  std::uint32_t mailbox_capacity = 128;
  bool record_trace = false;
};

struct ServingReport {
  /// One result per home slot, in slot order — the same shape run_sweep
  /// emits, so digests/diff lines reuse the sweep machinery verbatim.
  std::vector<SweepResult> slots;
  /// Worker threads actually used (after clamping to the slot count).
  std::uint32_t shards = 0;
  /// sweep_digest over `slots` — the merge-invariant fingerprint.
  std::uint64_t digest = 0;
  std::vector<std::string> digest_lines;

  // Cross-slot totals (sums of the per-slot reports).
  std::uint32_t completed = 0;
  std::uint32_t registered = 0;
  std::uint32_t sessions_up = 0;
  std::uint32_t failed = 0;
  /// `failed` split by cause (see LoadReport): queue-shed vs error.
  std::uint32_t failed_shed = 0;
  std::uint32_t failed_error = 0;
  std::uint64_t shed = 0;
  /// Co-located fast-path deliveries across all slots (wall-clock-only
  /// metric; excluded from the digest).
  std::uint64_t fastpath_hits = 0;

  /// Arrivals routed through mailboxes and producer back-pressure
  /// events (mailbox momentarily full). Wall-clock only, never in the
  /// digest.
  std::uint64_t routed = 0;
  std::uint64_t backpressure = 0;
  /// Host milliseconds for route + serve (slot slice construction and
  /// provisioning included — that is real serving-plane work).
  double wall_ms = 0.0;
  double regs_per_s = 0.0;
};

/// Home slot of a SUPI: supi_hash (the UDR's row hash) mod the slot
/// count, so storage and routing can never disagree on ownership.
std::uint32_t home_slot(std::string_view supi, std::uint32_t slots) noexcept;

/// Runs the sharded serving plane. `shards` resolves like
/// sim::shard_workers (0 = SHIELD5G_SHARD_WORKERS, then hardware
/// concurrency), then clamps to the slot count.
ServingReport run_serving(const ServingConfig& config, unsigned shards = 0);

}  // namespace shield5g::load
