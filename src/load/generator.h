// Open-loop concurrent-registration engine.
//
// Drives N UE registrations through a slice::Slice with arrivals drawn
// from an ArrivalProcess, interleaving the registrations in virtual time
// instead of running them back to back. Each UE is a continuation-style
// state machine: one NAS message exchange (UE -> gNB -> AMF -> ... ->
// response) runs as the usual synchronous chain inside a sim::ClockSpan
// lookahead, the span is rewound, and the exchange's completion is
// scheduled as a discrete event at start + elapsed. Chains dispatched in
// between observe each other's server occupancy through the per-server
// ServiceQueues — that is where queueing delay (and, past saturation,
// shedding) comes from.
//
// Determinism: a run is a pure function of (slice seed, LoadConfig).
// Events fire in (timestamp, FIFO) order, queue admissions break ties by
// worker index, and all randomness flows from seeded Rngs — two runs
// with the same inputs produce bit-identical traces and statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "load/arrival.h"
#include "slice/slice.h"

namespace shield5g::load {

struct LoadConfig {
  std::uint32_t ue_count = 100;
  ArrivalConfig arrivals;
  bool with_pdu = true;
  std::uint64_t seed = 0x10adULL;
  /// Keep the per-event trace lines (the determinism test compares
  /// them); the trace hash is computed either way.
  bool record_trace = false;
};

struct LoadReport {
  std::uint32_t completed = 0;
  std::uint32_t registered = 0;
  std::uint32_t sessions_up = 0;
  std::uint32_t failed = 0;
  /// `failed` split by cause: a UE whose exchange chain crossed a queue
  /// rejection (503 overload shed) counts as `failed_shed`; everything
  /// else — fault-injected 5xx, round-cap wedges — is `failed_error`.
  /// failed == failed_shed + failed_error.
  std::uint32_t failed_shed = 0;
  std::uint32_t failed_error = 0;

  /// Arrival -> completion per registered UE, queueing included.
  Samples setup_ms;
  /// Per-UE virtual instants (ms from run start) of arrival events.
  Samples arrival_ms;

  sim::Nanos makespan = 0;  // first arrival -> last completion
  double offered_rate_per_s = 0.0;
  double achieved_rate_per_s = 0.0;  // registered / makespan

  /// One line per UE event ("t=<ns> ue=<i> <what>") when record_trace.
  std::vector<std::string> trace;
  /// FNV-1a over every trace line (kept even when trace is discarded).
  std::uint64_t trace_hash = 0;

  std::string summary() const;
};

/// One externally routed arrival: subscriber index `ue` (into the
/// slice's subscriber table) starts its registration `at` nanoseconds
/// after run start. The serving plane (load/serving.h) draws ONE global
/// arrival schedule, routes each arrival to its home shard's mailbox,
/// and replays the shard's share through the explicit-arrival entry —
/// so the virtual-time workload is a pure function of the routing, not
/// of how many worker threads drained the mailboxes.
struct Arrival {
  std::uint32_t ue = 0;
  sim::Nanos at = 0;
};

class LoadGenerator {
 public:
  /// Runs one open-loop experiment against a created slice. The slice's
  /// clock advances to the last completion; server/queue statistics
  /// accumulate on the slice's bus servers.
  LoadReport run(slice::Slice& slice, const LoadConfig& config);

  /// Same engine, but with an externally supplied arrival list instead
  /// of a drawn schedule (`config.ue_count` and `config.arrivals` are
  /// ignored; `arrivals` must be time-ordered). Each entry references a
  /// subscriber by index, so one UE appears at most once.
  LoadReport run(slice::Slice& slice, const LoadConfig& config,
                 const std::vector<Arrival>& arrivals);
};

/// Post-run snapshot of one server's admission queue (queueing delay
/// reported separately from the service windows L_F/L_T).
struct QueueSnapshot {
  std::string server;
  std::uint32_t workers = 0;
  std::uint64_t admitted = 0;
  std::uint64_t queued = 0;
  std::uint64_t rejected = 0;
  double wait_p50_us = 0.0;
  double wait_max_us = 0.0;
  sim::Nanos total_wait = 0;
};

/// Queue snapshots for every well-known server of the slice (core VNFs
/// and deployed P-AKA modules), in a fixed deterministic order.
std::vector<QueueSnapshot> queue_snapshots(slice::Slice& slice);

}  // namespace shield5g::load
