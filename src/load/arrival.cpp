#include "load/arrival.h"

#include <cmath>
#include <stdexcept>

namespace shield5g::load {

const char* arrival_kind_name(ArrivalKind kind) noexcept {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kUniform: return "uniform";
    case ArrivalKind::kBurst: return "burst";
  }
  return "?";
}

std::vector<sim::Nanos> arrival_schedule(const ArrivalConfig& config,
                                         std::uint32_t count, Rng& rng) {
  if (config.rate_per_s <= 0.0) {
    throw std::invalid_argument("arrival_schedule: rate must be positive");
  }
  const double mean_gap_ns = 1e9 / config.rate_per_s;

  std::vector<sim::Nanos> schedule;
  schedule.reserve(count);
  double t = 0.0;
  switch (config.kind) {
    case ArrivalKind::kPoisson:
      for (std::uint32_t i = 0; i < count; ++i) {
        // Inverse-CDF exponential gap; 1 - u keeps log() away from 0.
        t += -std::log(1.0 - rng.uniform01()) * mean_gap_ns;
        schedule.push_back(static_cast<sim::Nanos>(t));
      }
      break;
    case ArrivalKind::kUniform:
      for (std::uint32_t i = 0; i < count; ++i) {
        t += mean_gap_ns;
        schedule.push_back(static_cast<sim::Nanos>(t));
      }
      break;
    case ArrivalKind::kBurst: {
      const std::uint32_t burst =
          config.burst_size > 0 ? config.burst_size : 1;
      const double burst_gap_ns = mean_gap_ns * burst;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (i != 0 && i % burst == 0) t += burst_gap_ns;
        schedule.push_back(static_cast<sim::Nanos>(t));
      }
      break;
    }
  }
  return schedule;
}

}  // namespace shield5g::load
