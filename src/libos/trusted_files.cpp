#include "libos/trusted_files.h"

#include "common/rng.h"
#include "crypto/sha256.h"

namespace shield5g::libos {

std::vector<TrustedFile> gramine_runtime_files() {
  std::vector<TrustedFile> files;
  files.push_back({"/gramine/sgx/loader", 2'100'000, true});
  files.push_back({"/gramine/sgx/libpal.so", 1'650'000, true});
  files.push_back({"/gramine/runtime/glibc/ld-linux-x86-64.so.2", 210'000,
                   true});
  files.push_back({"/gramine/runtime/glibc/libc.so.6", 2'030'000, true});
  files.push_back({"/gramine/runtime/glibc/libm.so.6", 940'000, true});
  files.push_back({"/gramine/runtime/glibc/libpthread.so.0", 155'000, true});
  files.push_back({"/gramine/runtime/glibc/libdl.so.2", 20'000, true});
  files.push_back({"/gramine/runtime/glibc/librt.so.1", 40'000, true});
  files.push_back({"/gramine/runtime/glibc/libresolv.so.2", 100'000, true});
  files.push_back({"/gramine/runtime/glibc/libnss_dns.so.2", 30'000, true});
  // Locale/terminfo/etc. support files read during glibc init.
  for (int i = 0; i < 48; ++i) {
    files.push_back({"/gramine/runtime/aux/file" + std::to_string(i),
                     static_cast<std::uint64_t>(6'000 + 977 * i), true});
  }
  return files;
}

std::vector<TrustedFile> gsc_rootfs_files(std::uint32_t seed) {
  // ~2,300 files, ~210 MB in total: the Ubuntu base layer GSC appends.
  // Deterministic pseudo-random sizes; only a small fraction (shared
  // libraries on the default library path) is touched at boot.
  Rng rng(0x6b5cf11e5ULL + seed);
  std::vector<TrustedFile> files;
  files.reserve(2'300);
  const char* dirs[] = {"/usr/lib", "/usr/share", "/usr/bin", "/lib",
                        "/etc",     "/var/lib",   "/opt"};
  for (int i = 0; i < 2'300; ++i) {
    const char* dir = dirs[i % 7];
    // Log-normal-ish size distribution: many small files, few large.
    const std::uint64_t size =
        1'000 + static_cast<std::uint64_t>(rng.lognormal(28'000, 1.4));
    const bool boot = (i % 7 == 3) && (i / 7 < 9);  // 9 /lib libraries
    files.push_back({std::string(dir) + "/f" + std::to_string(i), size, boot});
  }
  return files;
}

std::vector<TrustedFile> paka_app_files(const std::string& module_name,
                                        std::uint64_t app_extra_bytes) {
  std::vector<TrustedFile> files;
  const std::string base = "/opt/paka/" + module_name;
  files.push_back({base + "/server", 4'800'000 + app_extra_bytes, true});
  files.push_back({base + "/libssl.so.3", 680'000, true});
  files.push_back({base + "/libcrypto.so.3", 4'450'000, true});
  files.push_back({base + "/libpistache.so", 1'900'000, true});
  files.push_back({base + "/certs/server.crt", 2'100, true});
  files.push_back({base + "/certs/server.key", 3'300, true});
  files.push_back({base + "/certs/ca.crt", 2'000, true});
  files.push_back({base + "/config.json", 1'400, true});
  return files;
}

Bytes file_set_digest(const std::vector<TrustedFile>& files) {
  crypto::Sha256 hash;
  for (const auto& f : files) {
    hash.update(to_bytes(f.path));
    hash.update(be_bytes(f.size_bytes, 8));
  }
  const auto digest = hash.finalize();
  return Bytes(digest.begin(), digest.end());
}

std::uint64_t total_bytes(const std::vector<TrustedFile>& files) {
  std::uint64_t sum = 0;
  for (const auto& f : files) sum += f.size_bytes;
  return sum;
}

std::uint64_t boot_time_count(const std::vector<TrustedFile>& files) {
  std::uint64_t n = 0;
  for (const auto& f : files) n += f.boot_time ? 1 : 0;
  return n;
}

std::uint64_t boot_time_bytes(const std::vector<TrustedFile>& files) {
  std::uint64_t sum = 0;
  for (const auto& f : files) {
    if (f.boot_time) sum += f.size_bytes;
  }
  return sum;
}

}  // namespace shield5g::libos
