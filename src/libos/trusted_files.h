// Trusted-file sets.
//
// Gramine only lets an enclave read files whose hashes are pinned in the
// manifest. GSC, "to achieve generality", appends the majority of the
// container image's root directory to that list (paper §V-B1), which is
// one of the reasons enclave load takes close to a minute. This module
// generates synthetic file sets with realistic counts and sizes for the
// base runtime, an Ubuntu-like image root, and the P-AKA application
// layers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace shield5g::libos {

struct TrustedFile {
  std::string path;
  std::uint64_t size_bytes = 0;
  /// Loaded during Gramine/glibc/application startup (and therefore
  /// hashed and OCALL-opened at enclave load time); the rest are only
  /// verified if first touched later.
  bool boot_time = false;
};

/// Gramine runtime + glibc + loader (~60 files, a few tens of MB).
std::vector<TrustedFile> gramine_runtime_files();

/// Root filesystem of a minimal Ubuntu-like container image as GSC
/// appends it (a couple thousand files; /boot, /dev, /etc/mtab, /proc,
/// /sys excluded, as the paper notes).
std::vector<TrustedFile> gsc_rootfs_files(std::uint32_t seed);

/// The application layer for one P-AKA module: the service binary,
/// OpenSSL/Pistache-like shared objects, certificates and config.
/// `app_extra_bytes` differentiates the three modules' image sizes.
std::vector<TrustedFile> paka_app_files(const std::string& module_name,
                                        std::uint64_t app_extra_bytes);

/// Digest of a whole file set (stands in for per-file SHA-256 hashes in
/// the manifest; any file change changes the measurement).
Bytes file_set_digest(const std::vector<TrustedFile>& files);

std::uint64_t total_bytes(const std::vector<TrustedFile>& files);
std::uint64_t boot_time_count(const std::vector<TrustedFile>& files);
std::uint64_t boot_time_bytes(const std::vector<TrustedFile>& files);

}  // namespace shield5g::libos
