#include "libos/manifest.h"

#include <stdexcept>

namespace shield5g::libos {

Bytes Manifest::serialize() const {
  Bytes out = to_bytes("manifest-v1\n" + entrypoint + "\n");
  const Bytes size = be_bytes(enclave_size, 8);
  out.insert(out.end(), size.begin(), size.end());
  out.push_back(static_cast<std::uint8_t>(max_threads));
  out.push_back(preheat_enclave ? 1 : 0);
  out.push_back(debug ? 1 : 0);
  out.push_back(enable_stats ? 1 : 0);
  out.push_back(exitless ? 1 : 0);
  const Bytes files = file_set_digest(trusted_files);
  out.insert(out.end(), files.begin(), files.end());
  return out;
}

std::uint64_t Manifest::trusted_bytes() const noexcept {
  return total_bytes(trusted_files);
}

void Manifest::validate() const {
  if (entrypoint.empty()) {
    throw std::invalid_argument("Manifest: missing loader.entrypoint");
  }
  // Gramine needs 3 helper threads (IPC, async events, pipe-TLS) plus
  // at least one application thread (paper §V-B2).
  if (max_threads < 4) {
    throw std::invalid_argument(
        "Manifest: sgx.max_threads < 4 cannot run the P-AKA servers "
        "consistently (3 Gramine helper threads + 1 worker required)");
  }
  if (enclave_size < (512ULL << 20)) {
    throw std::invalid_argument(
        "Manifest: sgx.enclave_size below 512M is insufficient for the "
        "P-AKA working set");
  }
}

}  // namespace shield5g::libos
