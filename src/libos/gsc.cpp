#include "libos/gsc.h"

#include "crypto/hmac_sha256.h"
#include "crypto/sha256.h"

namespace shield5g::libos {

bool GscImage::verify(ByteView signer_key) const {
  const Bytes expected =
      crypto::hmac_sha256(signer_key, manifest.serialize());
  const Bytes id = crypto::Sha256::digest(signer_key);
  return ct_equal(expected, signature) && ct_equal(id, signer_id);
}

GscImage gsc_build(const std::string& app_name, const GscBuildOptions& opts,
                   ByteView signer_key) {
  GscImage image;
  image.name = "gsc-" + app_name;

  Manifest& m = image.manifest;
  m.entrypoint = "/opt/paka/" + app_name + "/server";
  m.enclave_size = opts.enclave_size;
  m.max_threads = opts.max_threads;
  m.preheat_enclave = opts.preheat_enclave;
  m.debug = opts.debug;
  m.enable_stats = opts.enable_stats;
  m.exitless = opts.exitless;

  // GSC merges: Gramine runtime, the image root filesystem (minus the
  // platform-specific directories), and the application layer.
  m.trusted_files = gramine_runtime_files();
  const auto rootfs = gsc_rootfs_files(opts.rootfs_seed);
  m.trusted_files.insert(m.trusted_files.end(), rootfs.begin(), rootfs.end());
  const auto app = paka_app_files(app_name, opts.app_extra_bytes);
  m.trusted_files.insert(m.trusted_files.end(), app.begin(), app.end());

  m.validate();

  image.signer_id = crypto::Sha256::digest(signer_key);
  image.signature = crypto::hmac_sha256(signer_key, m.serialize());
  return image;
}

}  // namespace shield5g::libos
