// Gramine Shielded Containers (GSC) analogue (paper §IV-C).
//
// `gsc build` transforms a regular container image into a graminized one:
// it merges the Gramine runtime into the image, generates the manifest
// (appending most of the root filesystem to the trusted-file list) and
// `gsc sign-image` signs it with a user-provided key. The signer identity
// (MRSIGNER analogue) and the manifest are folded into the enclave
// measurement at load.
#pragma once

#include <string>

#include "common/bytes.h"
#include "libos/manifest.h"

namespace shield5g::libos {

struct GscImage {
  std::string name;
  Manifest manifest;
  Bytes signer_id;   // MRSIGNER analogue: SHA-256 of the signer key
  Bytes signature;   // signature over the manifest by the signer key

  /// Verifies the signature against a signer key.
  bool verify(ByteView signer_key) const;
};

struct GscBuildOptions {
  std::uint64_t enclave_size = 512ULL << 20;
  std::uint32_t max_threads = 4;
  bool preheat_enclave = true;   // paper: sgx.preheat_enclave=true
  bool debug = true;             // paper builds with debug for stats
  bool enable_stats = true;      // paper: manifest stats option
  bool exitless = false;
  /// Differentiates the three module images' application layer sizes.
  std::uint64_t app_extra_bytes = 0;
  /// Seed for the synthetic root filesystem layer.
  std::uint32_t rootfs_seed = 0;
};

/// Builds and signs a graminized image for the named application.
GscImage gsc_build(const std::string& app_name, const GscBuildOptions& opts,
                   ByteView signer_key);

}  // namespace shield5g::libos
