// Gramine-SGX runtime model: enclave boot, trusted-file verification,
// helper threads, preheat, and the syscall-interposition layer that
// turns every application syscall into an OCALL round trip (or into a
// switchless call when the exitless feature is enabled).
#pragma once

#include <cstdint>
#include <memory>

#include "common/syscall.h"
#include "libos/gsc.h"
#include "sgx/machine.h"
#include "sim/clock.h"

namespace shield5g::libos {

/// Gramine software-layer cost constants (separate from the hardware
/// costs in sgx::CostModel).
struct LibosCosts {
  /// Untrusted-runtime marshalling + thread wakeup per OCALL, on top of
  /// the raw EEXIT/EENTER cycles and host syscall service time. This is
  /// the dominant per-request SGX cost for the network-bound P-AKA
  /// servers (paper §V-B3).
  sim::Nanos ocall_marshalling_ns = 3'200;
  /// Shielding copy of buffer bytes across the enclave boundary.
  double copy_per_byte_ns = 0.35;
  /// Synchronisation cost per switchless (exitless) call.
  sim::Nanos exitless_sync_ns = 900;
  /// Dynamic-loader / environment-probe OCALLs during boot that are not
  /// attributable to an individual trusted file.
  std::uint32_t boot_misc_ocalls = 180;
  /// Read-chunk size when verifying a trusted file at open.
  std::uint64_t file_chunk_bytes = 128 * 1024;
};

class GramineRuntime {
 public:
  GramineRuntime(sgx::Machine& machine, GscImage image,
                 LibosCosts costs = {});
  ~GramineRuntime();

  GramineRuntime(const GramineRuntime&) = delete;
  GramineRuntime& operator=(const GramineRuntime&) = delete;

  /// Full enclave load: ECREATE/EADD/EEXTEND/EINIT, Gramine+glibc init
  /// (trusted-file OCALL storm), helper-thread spawn and, if enabled,
  /// heap preheat. Returns the virtual-time duration of the load.
  sim::Nanos boot();

  bool booted() const noexcept { return booted_; }
  sim::Nanos boot_duration() const noexcept { return boot_duration_; }

  /// Application syscall through the interposition layer.
  void syscall(Sys sys, std::uint64_t bytes = 0);

  /// In-enclave computation (charged with the memory-encryption factor).
  void compute(sim::Nanos ns);

  /// Heap allocation churn (EPC page pressure) during a request.
  void alloc_pages(std::uint64_t pages);

  /// Lazy first-touch work: demand faults of cold code/heap pages plus
  /// the OCALLs of on-demand library loading (drives the R_I spike).
  void touch_cold_path(std::uint64_t pages, std::uint32_t lazy_ocalls);

  /// Spawns an application thread (clone OCALL + resident ECALL).
  void spawn_thread();

  /// EPC<->DRAM paging events (oversized-EPC model, Fig. 8).
  void page_swap(std::uint64_t pages);

  const GscImage& image() const noexcept { return image_; }
  const LibosCosts& costs() const noexcept { return libos_costs_; }
  sgx::Enclave& enclave();
  const sgx::TransitionCounters& counters() const;

  /// Tears the enclave down (releases EPC).
  void shutdown();

 private:
  void load_trusted_file(const TrustedFile& file);

  sgx::Machine& machine_;
  GscImage image_;
  LibosCosts libos_costs_;
  sgx::Enclave* enclave_ = nullptr;  // owned by the machine
  bool booted_ = false;
  sim::Nanos boot_duration_ = 0;
  std::uint32_t app_threads_ = 0;
};

}  // namespace shield5g::libos
