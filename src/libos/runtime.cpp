#include "libos/runtime.h"

#include <stdexcept>

#include "common/log.h"

namespace shield5g::libos {

GramineRuntime::GramineRuntime(sgx::Machine& machine, GscImage image,
                               LibosCosts costs)
    : machine_(machine), image_(std::move(image)), libos_costs_(costs) {
  image_.manifest.validate();
}

GramineRuntime::~GramineRuntime() {
  if (enclave_ != nullptr) {
    machine_.destroy_enclave(*enclave_);
    enclave_ = nullptr;
  }
}

sgx::Enclave& GramineRuntime::enclave() {
  if (enclave_ == nullptr) {
    throw std::logic_error("GramineRuntime: enclave not created (boot first)");
  }
  return *enclave_;
}

const sgx::TransitionCounters& GramineRuntime::counters() const {
  if (enclave_ == nullptr) {
    throw std::logic_error("GramineRuntime: no enclave");
  }
  return enclave_->counters();
}

void GramineRuntime::load_trusted_file(const TrustedFile& file) {
  // pal-sgx opens and stats the file in the untrusted host, maps it,
  // then the in-enclave shielding code hashes the contents and compares
  // against the manifest before letting the application see a byte.
  syscall(Sys::kOpen);
  syscall(Sys::kStat);
  syscall(Sys::kMmap);
  const std::uint64_t chunks =
      (file.size_bytes + libos_costs_.file_chunk_bytes - 1) /
      libos_costs_.file_chunk_bytes;
  for (std::uint64_t i = 0; i < chunks; ++i) {
    syscall(Sys::kRead,
            std::min(libos_costs_.file_chunk_bytes,
                     file.size_bytes - i * libos_costs_.file_chunk_bytes));
  }
  // In-enclave verification hash over the file contents.
  enclave_->execute(static_cast<sim::Nanos>(
      static_cast<double>(file.size_bytes) /
      machine_.costs().file_hash_bytes_per_ns));
  syscall(Sys::kClose);
}

sim::Nanos GramineRuntime::boot() {
  if (booted_) throw std::logic_error("GramineRuntime: double boot");
  const sim::Nanos start = machine_.clock().now();
  const Manifest& m = image_.manifest;

  // ECREATE + measurement of manifest and signer identity.
  enclave_ = &machine_.create_enclave(sgx::EnclaveConfig{
      image_.name, m.enclave_size, m.max_threads, m.debug});
  enclave_->extend_measurement(m.serialize());
  enclave_->extend_measurement(image_.signer_id);

  // EADD + EEXTEND every enclave page (SGX1-style full commit).
  enclave_->add_pages(m.enclave_size, file_set_digest(m.trusted_files));
  enclave_->init();

  // The whole Gramine process runs under a single long-lived ECALL.
  enclave_->ecall_enter_resident();

  // Gramine + glibc + application startup: verify and map every
  // boot-time trusted file ("several hundred OCALLs", paper §V-B1).
  for (const auto& file : m.trusted_files) {
    if (file.boot_time) load_trusted_file(file);
  }

  // Loader relocation/probing OCALLs not tied to one file.
  for (std::uint32_t i = 0; i < libos_costs_.boot_misc_ocalls; ++i) {
    syscall(i % 3 == 0 ? Sys::kStat : (i % 3 == 1 ? Sys::kFutex : Sys::kRead),
            i % 3 == 2 ? 256 : 0);
  }

  // Three Gramine helper threads: IPC, async events, pipe-TLS
  // (paper §V-B2), each entering the enclave via its own ECALL and
  // staying resident. Pipe creation per helper plus a TLS handshake on
  // the IPC pipe.
  for (int i = 0; i < 3; ++i) {
    syscall(Sys::kClone);
    enclave_->ecall_enter_resident();
    syscall(Sys::kPipe);
  }
  compute(35 * sim::kMicrosecond);  // in-enclave pipe TLS handshake

  // Preheat: pre-fault all heap pages so steady-state requests do not
  // take EPC faults (paper §IV-C). Page-fault service time varies a
  // little run to run (host scheduling, cache state), giving Fig. 7 its
  // spread.
  if (m.preheat_enclave) {
    const std::uint64_t heap_pages =
        m.enclave_size / machine_.costs().page_size;
    const double jitter = machine_.rng().lognormal(1.0, 0.006);
    machine_.clock().advance(static_cast<sim::Nanos>(
        static_cast<double>(heap_pages *
                            machine_.costs().preheat_fault_per_page) *
        jitter));
  }

  booted_ = true;
  boot_duration_ = machine_.clock().now() - start;
  S5G_LOG(LogLevel::kInfo, "libos")
      << image_.name << " booted in " << sim::to_s(boot_duration_) << " s";
  return boot_duration_;
}

void GramineRuntime::syscall(Sys sys, std::uint64_t bytes) {
  if (enclave_ == nullptr) {
    throw std::logic_error("GramineRuntime: syscall before boot");
  }
  const sim::Nanos host = syscall_host_ns(sys, bytes);
  const auto copy = static_cast<sim::Nanos>(
      libos_costs_.copy_per_byte_ns * static_cast<double>(bytes));
  if (image_.manifest.exitless) {
    // Switchless: an untrusted helper thread services the call; no
    // enclave transition, only synchronisation and the copy.
    machine_.clock().advance(host + copy + libos_costs_.exitless_sync_ns);
  } else {
    enclave_->ocall(host + copy + libos_costs_.ocall_marshalling_ns);
  }
}

void GramineRuntime::compute(sim::Nanos ns) { enclave().execute(ns); }

void GramineRuntime::alloc_pages(std::uint64_t pages) {
  enclave().alloc_pages(pages);
}

void GramineRuntime::touch_cold_path(std::uint64_t pages,
                                     std::uint32_t lazy_ocalls) {
  enclave().demand_fault(pages);
  for (std::uint32_t i = 0; i < lazy_ocalls; ++i) {
    syscall(i % 4 == 0 ? Sys::kOpen
                       : (i % 4 == 1 ? Sys::kMmap
                                     : (i % 4 == 2 ? Sys::kRead : Sys::kClose)),
            i % 4 == 2 ? 4096 : 0);
  }
}

void GramineRuntime::spawn_thread() {
  if (app_threads_ + 4 >= image_.manifest.max_threads) {
    throw std::runtime_error(
        "GramineRuntime: TCS exhausted (sgx.max_threads too small)");
  }
  syscall(Sys::kClone);
  enclave().ecall_enter_resident();
  ++app_threads_;
}

void GramineRuntime::page_swap(std::uint64_t pages) {
  enclave().page_swap(pages);
}

void GramineRuntime::shutdown() {
  if (enclave_ != nullptr) {
    machine_.destroy_enclave(*enclave_);
    enclave_ = nullptr;
    booted_ = false;
  }
}

}  // namespace shield5g::libos
