// Gramine manifest model (paper §IV-C).
//
// Mirrors the manifest options the paper sets when building the P-AKA
// images with GSC: sgx.max_threads, enclave size, preheat, debug/stats —
// plus the trusted-file list GSC generates by appending most of the
// image's root directory. The exitless option models Gramine's
// switchless-OCALL feature the paper discusses as future work (§V-B7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "libos/trusted_files.h"

namespace shield5g::libos {

struct Manifest {
  std::string entrypoint;                       // loader.entrypoint
  std::uint64_t enclave_size = 512ULL << 20;    // sgx.enclave_size
  std::uint32_t max_threads = 4;                // sgx.max_threads
  bool preheat_enclave = true;                  // sgx.preheat_enclave
  bool debug = false;                           // loader.log_level
  bool enable_stats = false;                    // sgx.enable_stats
  bool exitless = false;                        // sgx.rpc_thread_num > 0
  std::vector<TrustedFile> trusted_files;       // sgx.trusted_files

  /// Canonical serialization folded into the enclave measurement (any
  /// manifest change changes MRENCLAVE, as with real Gramine).
  Bytes serialize() const;

  /// Total bytes of all trusted files.
  std::uint64_t trusted_bytes() const noexcept;

  /// Sanity checks mirroring Gramine's loader: the paper observed that
  /// fewer than 4 threads or less than 512 MB EPC makes the P-AKA
  /// modules "behave inconsistently"; validate() enforces the same
  /// floor (3 helper threads + 1 worker).
  void validate() const;
};

}  // namespace shield5g::libos
