#include "nf/types.h"

#include <cstdio>

namespace shield5g::nf {

std::string Guti::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "5g-guti-%s%s-%02x-%03x-%08x",
                plmn.mcc.c_str(), plmn.mnc.c_str(), amf_region, amf_set,
                tmsi);
  return buf;
}

}  // namespace shield5g::nf
