// Columnar (SoA) subscriber credential store — the UDR's backing table.
//
// A `std::map<Supi, SubscriberRecord>` holds eight subscribers fine and
// a million badly: every record costs three heap nodes (tree node + two
// SecretBytes buffers), ~200 bytes of allocator overhead, and a
// pointer-chasing lookup that misses cache on every level. This store
// flattens the table into parallel columns sized exactly by content:
//
//   index   open-addressed power-of-two slot array (FNV-1a of the SUPI,
//           linear probing) mapping SUPI -> row
//   columns K / OPc as fixed Secret<16> (in-place, zeroize-on-destruct,
//           no heap per key), SQN as u64, AMF field as 2 bytes
//   supi    interned into a common/arena.h bump arena; the column holds
//           views — one allocation per 64 KiB of identities, not per row
//
// ~56 bytes + SUPI text per subscriber all-in, visiting exactly two
// cache lines per hit (slot probe + row columns touched).
//
// Semantics match the map it replaces: provision() inserts or replaces,
// rows are stable once assigned (a replace reuses the row), SQN updates
// write in place. Threading: the store belongs to one UDR instance, and
// a UDR belongs to one shard's slice (DESIGN.md §16) — thread-confined
// by construction, like the arena beneath it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/secret.h"
#include "common/thread_annotations.h"
#include "nf/types.h"

namespace shield5g::nf {

/// FNV-1a over the SUPI text: the store's slot hash and the serving
/// plane's home-shard hash (load/serving.h) — one function, so "which
/// shard owns this subscriber" and "which slot holds it" never disagree.
std::uint64_t supi_hash(std::string_view supi) noexcept;

class SubscriberStore {
 public:
  static constexpr std::uint32_t kNoRow = 0xFFFFFFFFu;

  SubscriberStore();

  SubscriberStore(const SubscriberStore&) = delete;
  SubscriberStore& operator=(const SubscriberStore&) = delete;

  /// Pre-sizes columns and the slot index for `n` subscribers, so a
  /// bulk provision run performs no rehash or column growth.
  void reserve(std::size_t n);

  /// Inserts or replaces the record's credentials; returns the row.
  /// K/OPc must be 16 bytes and the AMF field 2 (the SBI provisioning
  /// route validates the same bounds).
  std::uint32_t provision(const SubscriberRecord& record);

  /// Row holding `supi`, or kNoRow.
  std::uint32_t row(std::string_view supi) const noexcept;

  std::size_t size() const noexcept { return supi_.size(); }

  // ---- Row accessors (caller guarantees row < size()) ------------------
  std::string_view supi(std::uint32_t row) const noexcept {
    return supi_[row];
  }
  const Secret<16>& k(std::uint32_t row) const noexcept { return k_[row]; }
  const Secret<16>& opc(std::uint32_t row) const noexcept { return opc_[row]; }
  std::uint64_t sqn(std::uint32_t row) const noexcept { return sqn_[row]; }
  void set_sqn(std::uint32_t row, std::uint64_t sqn) noexcept {
    sqn_[row] = sqn;
  }
  ByteView amf_field(std::uint32_t row) const noexcept {
    return ByteView(amf_[row].data(), amf_[row].size());
  }
  /// 48-bit big-endian SQN, as the SBI hex fields carry it.
  Bytes sqn_bytes(std::uint32_t row) const { return be_bytes(sqn_[row], 6); }

  /// Approximate resident footprint: column capacities, the slot index
  /// and the identity arena (the bench's per-subscriber byte metric).
  std::size_t bytes_reserved() const noexcept;

 private:
  void rehash(std::size_t slots);
  std::uint32_t find_slot(std::string_view supi) const noexcept;

  // Slot values are row + 1; 0 marks an empty slot.
  std::vector<std::uint32_t> index_ SHIELD_THREAD_CONFINED;
  std::vector<std::string_view> supi_;
  std::vector<Secret<16>> k_;
  std::vector<Secret<16>> opc_;
  std::vector<std::uint64_t> sqn_;
  std::vector<std::array<std::uint8_t, 2>> amf_;
  Arena ids_;
};

}  // namespace shield5g::nf
