// Service-based-interface JSON conventions: byte fields travel as
// lower-case hex strings, exactly as the Table I parameters would in the
// paper's REST payloads.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/hex.h"
#include "common/secret.h"
#include "json/json.h"
#include "net/http.h"
#include "sgx/enclave_context.h"

namespace shield5g::nf {

inline json::Value hex_field(ByteView bytes) {
  return json::Value(hex_encode(bytes));
}

/// The only path by which tainted key material enters an SBI body: an
/// audited declassification with an explicit reason and the sending
/// module's isolation context. This is where the paper's Table V leak
/// surface is counted — baseline VNFs call it with a container/host
/// context, the P-AKA modules with their enclave-backed context.
inline json::Value secret_hex_field(SecretView secret, DeclassifyReason reason,
                                    const sgx::EnclaveContext* ctx) {
  return json::Value(hex_encode(ByteView(secret.declassify(reason, ctx))));
}

/// Fetches a hex-encoded key field straight into tainted storage, so
/// the plaintext never sits in an untracked Bytes value at the caller.
inline std::optional<SecretBytes> secret_hex_bytes(const json::Value& obj,
                                                   std::string_view key) {
  const auto str = obj.get_string(key);
  if (!str) return std::nullopt;
  try {
    return SecretBytes(hex_decode(*str));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Fetches a hex-encoded byte field; nullopt when absent or malformed.
inline std::optional<Bytes> hex_bytes(const json::Value& obj,
                                      std::string_view key) {
  const auto str = obj.get_string(key);
  if (!str) return std::nullopt;
  try {
    return hex_decode(*str);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Builds a JSON POST request.
inline net::HttpRequest json_post(std::string path, const json::Value& body) {
  net::HttpRequest req;
  req.method = net::Method::kPost;
  req.path = std::move(path);
  req.headers.set("content-type", "application/json");
  req.body = body.dump();
  return req;
}

inline net::HttpRequest json_put(std::string path, const json::Value& body) {
  net::HttpRequest req = json_post(std::move(path), body);
  req.method = net::Method::kPut;
  return req;
}

inline net::HttpRequest sbi_get(std::string path) {
  net::HttpRequest req;
  req.method = net::Method::kGet;
  req.path = std::move(path);
  return req;
}

/// Parses a JSON body; nullopt on malformed input. Accepts any view —
/// the zero-copy RequestView::body aliasing the record included.
inline std::optional<json::Value> parse_body(std::string_view body) {
  try {
    return json::parse(body);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace shield5g::nf
