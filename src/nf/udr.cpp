#include "nf/udr.h"

#include "nf/sbi.h"

namespace shield5g::nf {

Udr::Udr(net::Bus& bus, const std::string& name) : Vnf(name, bus) {
  register_routes();
}

void Udr::register_routes() {
  auto& router = server_.router();

  // Authentication subscription read. The response includes the
  // permanent key only because the monolithic/container baselines need
  // it; an SGX deployment provisions K to the eUDM enclave sealed and
  // the UDM never forwards it (see paka::EudmAkaService).
  router.add(
      net::Method::kGet,
      "/nudr-dr/v1/subscription-data/:supi/authentication-subscription",
      [this](const net::RequestView&, const net::PathParams& params) {
        const std::uint32_t row = store_.row(params.at("supi"));
        if (row == SubscriberStore::kNoRow) {
          return net::HttpResponse::error(404, "unknown SUPI");
        }
        json::Object body;
        body["supi"] = std::string(store_.supi(row));
        // Audited, host-grade exposure: this is precisely the baseline
        // leak the paper's eUDM removes (the SGX deployment never hits
        // this route for K).
        body["k"] = secret_hex_field(store_.k(row),
                                     DeclassifyReason::kTransport,
                                     secret_ctx());
        body["opc"] = secret_hex_field(store_.opc(row),
                                       DeclassifyReason::kTransport,
                                       secret_ctx());
        body["sqn"] = hex_field(store_.sqn_bytes(row));
        body["amfField"] = hex_field(store_.amf_field(row));
        return net::HttpResponse::json(200, json::Value(body).dump());
      });

  // Atomic SQN advance for a fresh authentication vector.
  router.add(net::Method::kPost,
             "/nudr-dr/v1/subscription-data/:supi/sqn-advance",
             [this](const net::RequestView&, const net::PathParams& params) {
               const std::uint32_t row = store_.row(params.at("supi"));
               if (row == SubscriberStore::kNoRow) {
                 return net::HttpResponse::error(404, "unknown SUPI");
               }
               store_.set_sqn(row, store_.sqn(row) + kSqnStep);
               json::Object body;
               body["sqn"] = hex_field(store_.sqn_bytes(row));
               return net::HttpResponse::json(200, json::Value(body).dump());
             });

  // Resynchronisation write-back of the UE's SQNms.
  router.add(
      net::Method::kPut, "/nudr-dr/v1/subscription-data/:supi/sqn",
      [this](const net::RequestView& req, const net::PathParams& params) {
        const std::uint32_t row = store_.row(params.at("supi"));
        if (row == SubscriberStore::kNoRow) {
          return net::HttpResponse::error(404, "unknown SUPI");
        }
        const auto body = parse_body(req.body);
        if (!body) return net::HttpResponse::error(400, "bad json");
        const auto sqn = hex_bytes(*body, "sqn");
        if (!sqn || sqn->size() != 6) {
          return net::HttpResponse::error(400, "bad sqn");
        }
        // Jump past the UE's value so the next vector is acceptable.
        store_.set_sqn(row, be_value(*sqn) + kSqnStep);
        return net::HttpResponse::json(200, "{}");
      });

  // Provisioning over the SBI (used by examples/tests).
  router.add(
      net::Method::kPut, "/nudr-dr/v1/subscription-data/:supi",
      [this](const net::RequestView& req, const net::PathParams& params) {
        const auto body = parse_body(req.body);
        if (!body) return net::HttpResponse::error(400, "bad json");
        auto k = secret_hex_bytes(*body, "k");
        auto opc = secret_hex_bytes(*body, "opc");
        const auto sqn = hex_bytes(*body, "sqn");
        if (!k || k->size() != 16 || !opc || opc->size() != 16 || !sqn ||
            sqn->size() != 6) {
          return net::HttpResponse::error(400, "bad credential fields");
        }
        SubscriberRecord rec;
        rec.supi = Supi{params.at("supi")};
        rec.k = std::move(*k);
        rec.opc = std::move(*opc);
        rec.sqn = be_value(*sqn);
        if (const auto amf_field = hex_bytes(*body, "amfField");
            amf_field && amf_field->size() == 2) {
          rec.amf_field = *amf_field;
        }
        provision(rec);
        return net::HttpResponse::json(201, "{}");
      });
}

}  // namespace shield5g::nf
