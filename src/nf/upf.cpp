#include "nf/upf.h"

namespace shield5g::nf {

UpfSession Upf::n4_establish(const std::string& supi,
                             std::uint8_t pdu_session_id,
                             const std::string& dnn) {
  clock_.advance(kPfcpRtt);
  UpfSession session;
  session.supi = supi;
  session.pdu_session_id = pdu_session_id;
  session.teid = next_teid_++;
  session.dnn = dnn;
  session.ue_ip = "10.0." + std::to_string(next_ip_suffix_ / 250) + "." +
                  std::to_string(next_ip_suffix_ % 250 + 2);
  ++next_ip_suffix_;
  sessions_[session.teid] = session;
  return session;
}

bool Upf::n4_release(std::uint32_t teid) {
  clock_.advance(kPfcpRtt);
  return sessions_.erase(teid) > 0;
}

std::optional<UpfSession> Upf::find(std::uint32_t teid) const {
  const auto it = sessions_.find(teid);
  if (it == sessions_.end()) return std::nullopt;
  return it->second;
}

}  // namespace shield5g::nf
