// Base class for the core-network VNFs.
//
// A VNF owns its (container) execution environment and a bus-attachable
// server, and calls peer VNFs through the bus with its own environment
// charged for client-side work — the shape of OAI's docker-compose
// deployment.
#pragma once

#include <string>

#include "net/bus.h"
#include "net/env.h"
#include "sgx/enclave_context.h"

namespace shield5g::nf {

class Vnf {
 public:
  Vnf(std::string name, net::Bus& bus)
      : env_(bus.clock()),
        server_(std::move(name), env_, bus.costs()),
        bus_(bus),
        secret_ctx_(sgx::EnclaveContext::container(server_.name())) {
    bus_.attach(server_);
  }
  virtual ~Vnf() { bus_.detach(server_.name()); }

  Vnf(const Vnf&) = delete;
  Vnf& operator=(const Vnf&) = delete;

  net::Server& server() noexcept { return server_; }
  const std::string& name() const noexcept { return server_.name(); }
  net::ExecutionEnv& env() noexcept { return env_; }
  net::Bus& bus() noexcept { return bus_; }

  /// Declassification context for this VNF's secret material. Baseline
  /// VNFs run as plain containers (host-grade); key bytes they expose
  /// on the SBI are counted under secret.declassify.*.host — the paper's
  /// Table V leak surface.
  const sgx::EnclaveContext* secret_ctx() const noexcept {
    return &secret_ctx_;
  }

 protected:
  /// Client-side request to a peer service on the bus.
  net::Bus::Exchange call(const std::string& to, const net::HttpRequest& req) {
    return bus_.request(server_.name(), to, req, &env_);
  }

  net::HostEnv env_;
  net::Server server_;
  net::Bus& bus_;
  sgx::EnclaveContext secret_ctx_;
};

}  // namespace shield5g::nf
