// Session Management Function: PDU session establishment against the
// UPF over N4 (paper §II-A).
#pragma once

#include <cstdint>
#include <map>

#include "nf/types.h"
#include "nf/upf.h"
#include "nf/vnf.h"

namespace shield5g::nf {

class Smf : public Vnf {
 public:
  Smf(net::Bus& bus, Upf& upf, const std::string& name = "smf");

  std::uint64_t sessions_created() const noexcept { return created_; }

 private:
  void register_routes();

  Upf& upf_;
  std::map<std::string, std::uint32_t> contexts_;  // ctx key -> TEID
  std::uint64_t created_ = 0;
};

}  // namespace shield5g::nf
