#include "nf/udm.h"

#include "common/log.h"
#include "common/stats.h"
#include "crypto/suci.h"
#include "nf/aka_core.h"
#include "nf/sbi.h"

namespace shield5g::nf {

Udm::Udm(net::Bus& bus, UdmConfig config)
    : Vnf(config.name, bus),
      config_(std::move(config)),
      milenage_cache_(config_.milenage_cache_capacity),
      rand_rng_(config_.rand_seed) {
  register_routes();
}

const crypto::Milenage& Udm::milenage_for(const std::string& supi,
                                          const SecretBytes& k,
                                          const SecretBytes& opc) {
  MilenageEntry* cached = milenage_cache_.find(supi);
  // ct-audited(Secret operator== is ct_equal-backed; branch reveals only whether the cached Milenage context matches)
  if (cached != nullptr && cached->k == k && cached->opc == opc) {
    return cached->ctx;
  }
  const std::uint64_t before = milenage_cache_.evictions();
  MilenageEntry& entry = milenage_cache_.insert(
      supi, MilenageEntry{k, opc, crypto::Milenage(k, opc)});
  if (milenage_cache_.evictions() != before) {
    counter_add("udm.milenage.evict", milenage_cache_.evictions() - before);
  }
  return entry.ctx;
}

std::optional<Supi> Udm::resolve_identity(const json::Value& body) {
  if (const auto supi = body.get_string("supi")) return Supi{*supi};
  const auto suci_str = body.get_string("suci");
  if (!suci_str) return std::nullopt;
  const auto suci = crypto::Suci::from_string(*suci_str);
  if (!suci) return std::nullopt;
  // SIDF: the ECIES private-key operation executes for real and its
  // primitive costs land in this handler's L_F via the op counters.
  const auto supi =
      crypto::deconceal_suci(*suci, config_.hn_key.private_key);
  if (!supi) return std::nullopt;
  return Supi{*supi};
}

void Udm::register_routes() {
  auto& router = server_.router();

  // Nudm_UEAuthentication_Get: generate the HE AV.
  router.add(
      net::Method::kPost, "/nudm-ueau/v1/generate-auth-data",
      [this](const net::RequestView& req, const net::PathParams&) {
        const auto body = parse_body(req.body);
        if (!body) return net::HttpResponse::error(400, "bad json");
        const auto snn = body->get_string("servingNetworkName");
        if (!snn) return net::HttpResponse::error(400, "missing SNN");
        if (!body->has("suci") && !body->has("supi")) {
          return net::HttpResponse::error(400, "missing identity");
        }
        const auto supi = resolve_identity(*body);
        if (!supi) {
          return net::HttpResponse::error(403, "SUCI de-concealment failed");
        }

        // Credentials + fresh SQN from the UDR.
        auto sub = call(config_.udr_service,
                        sbi_get("/nudr-dr/v1/subscription-data/" +
                                supi->value + "/authentication-subscription"));
        if (sub.response.status != 200) {
          return net::HttpResponse::error(404, "unknown subscriber");
        }
        auto adv = call(config_.udr_service,
                        json_post("/nudr-dr/v1/subscription-data/" +
                                      supi->value + "/sqn-advance",
                                  json::Value(json::Object{})));
        if (adv.response.status != 200) {
          return net::HttpResponse::error(500, "SQN advance failed");
        }
        const auto sub_body = parse_body(sub.response.body);
        const auto adv_body = parse_body(adv.response.body);
        if (!sub_body || !adv_body) {
          return net::HttpResponse::error(500, "bad UDR payload");
        }
        const auto opc = secret_hex_bytes(*sub_body, "opc");
        const auto amf_field = hex_bytes(*sub_body, "amfField");
        const auto sqn = hex_bytes(*adv_body, "sqn");
        if (!opc || !amf_field || !sqn) {
          return net::HttpResponse::error(500, "incomplete UDR record");
        }

        const Bytes rand = rand_rng_.bytes(16);
        HeAv av;
        if (config_.deployment == AkaDeployment::kExternal) {
          // Offload to the eUDM P-AKA module with the Table I inputs
          // (OPc, RAND, SQN, AMFid); the long-term key K stays inside
          // the module (sealed), so it is never on this path.
          json::Object paka;
          paka["supi"] = supi->value;
          paka["opc"] = secret_hex_field(*opc, DeclassifyReason::kTransport,
                                         secret_ctx());
          paka["rand"] = hex_field(rand);
          paka["sqn"] = hex_field(*sqn);
          paka["amfId"] = hex_field(*amf_field);
          paka["snn"] = *snn;
          auto gen = call(next_eudm(),
                          json_post("/paka/v1/generate-av",
                                    json::Value(std::move(paka))));
          if (gen.response.status != 200) {
            return net::HttpResponse::error(500, "eUDM P-AKA failure");
          }
          const auto gen_body = parse_body(gen.response.body);
          if (!gen_body) return net::HttpResponse::error(500, "bad P-AKA");
          const auto r = hex_bytes(*gen_body, "rand");
          const auto autn = hex_bytes(*gen_body, "autn");
          const auto xres = hex_bytes(*gen_body, "xresStar");
          auto kausf = secret_hex_bytes(*gen_body, "kausf");
          if (!r || !autn || !xres || !kausf) {
            return net::HttpResponse::error(500, "incomplete P-AKA output");
          }
          av = HeAv{*r, *autn, *xres, std::move(*kausf)};
        } else {
          const auto k = secret_hex_bytes(*sub_body, "k");
          if (!k) return net::HttpResponse::error(500, "no key material");
          av = generate_he_av(milenage_for(supi->value, *k, *opc), rand,
                              *sqn, *amf_field, *snn);
        }
        ++av_count_;

        json::Object out;
        out["supi"] = supi->value;
        out["rand"] = hex_field(av.rand);
        out["autn"] = hex_field(av.autn);
        out["xresStar"] = hex_field(av.xres_star);
        out["kausf"] = secret_hex_field(av.kausf, DeclassifyReason::kTransport,
                                        secret_ctx());
        return net::HttpResponse::json(200, json::Value(out).dump());
      });

  // Nudm_UEAuthentication_ResultConfirmation.
  router.add(net::Method::kPost, "/nudm-ueau/v1/:supi/auth-events",
             [this](const net::RequestView&, const net::PathParams&) {
               ++auth_events_;
               return net::HttpResponse::json(201, "{}");
             });

  // Resynchronisation: verify AUTS and write SQNms back to the UDR.
  router.add(
      net::Method::kPost, "/nudm-ueau/v1/resync",
      [this](const net::RequestView& req, const net::PathParams&) {
        const auto body = parse_body(req.body);
        if (!body) return net::HttpResponse::error(400, "bad json");
        const auto supi = resolve_identity(*body);
        const auto rand = hex_bytes(*body, "rand");
        const auto auts = hex_bytes(*body, "auts");
        if (!supi || !rand || !auts) {
          return net::HttpResponse::error(400, "missing resync fields");
        }
        auto sub = call(config_.udr_service,
                        sbi_get("/nudr-dr/v1/subscription-data/" +
                                supi->value + "/authentication-subscription"));
        if (sub.response.status != 200) {
          return net::HttpResponse::error(404, "unknown subscriber");
        }
        const auto sub_body = parse_body(sub.response.body);
        const auto opc = secret_hex_bytes(*sub_body, "opc");
        if (!opc) return net::HttpResponse::error(500, "bad UDR record");

        std::optional<Bytes> sqn_ms;
        if (config_.deployment == AkaDeployment::kExternal) {
          json::Object paka;
          paka["supi"] = supi->value;
          paka["opc"] = secret_hex_field(*opc, DeclassifyReason::kTransport,
                                         secret_ctx());
          paka["rand"] = hex_field(*rand);
          paka["auts"] = hex_field(*auts);
          auto res = call(next_eudm(),
                          json_post("/paka/v1/resync",
                                    json::Value(std::move(paka))));
          if (res.response.status != 200) {
            return net::HttpResponse::error(403, "AUTS verification failed");
          }
          const auto res_body = parse_body(res.response.body);
          if (res_body) sqn_ms = hex_bytes(*res_body, "sqnMs");
        } else {
          const auto k = secret_hex_bytes(*sub_body, "k");
          if (!k) return net::HttpResponse::error(500, "no key material");
          sqn_ms = resync_verify(milenage_for(supi->value, *k, *opc),
                                 *rand, *auts);
        }
        if (!sqn_ms) {
          return net::HttpResponse::error(403, "AUTS verification failed");
        }
        json::Object put;
        put["sqn"] = hex_field(*sqn_ms);
        auto wr = call(config_.udr_service,
                       json_put("/nudr-dr/v1/subscription-data/" +
                                    supi->value + "/sqn",
                                json::Value(std::move(put))));
        if (wr.response.status != 200) {
          return net::HttpResponse::error(500, "SQN write-back failed");
        }
        S5G_LOG(LogLevel::kInfo, "udm")
            << "resynchronised SQN for " << supi->value;
        return net::HttpResponse::json(200, "{}");
      });
}

}  // namespace shield5g::nf
