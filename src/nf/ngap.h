// NGAP (N2) message codec — the gNB <-> AMF control interface
// (TS 38.413, simplified wire format).
//
// The paper's testbed relays all NAS through this interface (Fig. 2);
// modeling it as real messages gives the UE-association lifecycle
// (NG Setup with PLMN admission, Initial UE Message, Uplink/Downlink NAS
// Transport, UE Context Release) an explicit, testable protocol surface.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "nf/types.h"

namespace shield5g::nf {

enum class NgapType : std::uint8_t {
  kNgSetupRequest = 0x01,
  kNgSetupResponse = 0x02,
  kNgSetupFailure = 0x03,
  kInitialUeMessage = 0x10,
  kUplinkNasTransport = 0x11,
  kDownlinkNasTransport = 0x12,
  kUeContextReleaseCommand = 0x20,
  kUeContextReleaseComplete = 0x21,
};

/// One NGAP PDU. Field presence depends on the type; absent IDs are 0
/// and an absent NAS PDU is empty.
struct NgapMessage {
  NgapType type = NgapType::kNgSetupRequest;
  std::uint64_t ran_ue_id = 0;  // RAN UE NGAP ID
  std::uint64_t amf_ue_id = 0;  // AMF UE NGAP ID
  Plmn plmn;                    // NG Setup / Initial UE Message
  std::string gnb_name;         // NG Setup
  Bytes nas_pdu;                // NAS transport payloads
  std::uint8_t cause = 0;       // failures / release

  Bytes encode() const;
  static std::optional<NgapMessage> decode(ByteView wire);

  static NgapMessage ng_setup_request(const Plmn& plmn,
                                      const std::string& gnb_name);
  static NgapMessage initial_ue(std::uint64_t ran_ue_id, const Plmn& plmn,
                                Bytes nas);
  static NgapMessage uplink_nas(std::uint64_t ran_ue_id,
                                std::uint64_t amf_ue_id, Bytes nas);
  static NgapMessage downlink_nas(std::uint64_t ran_ue_id,
                                  std::uint64_t amf_ue_id, Bytes nas);
};

}  // namespace shield5g::nf
