#include "nf/ngap.h"

namespace shield5g::nf {

namespace {
constexpr std::uint8_t kNgapMagic = 0x4e;  // 'N'

void append_lv(Bytes& out, ByteView value) {
  const Bytes len = be_bytes(value.size(), 2);
  out.insert(out.end(), len.begin(), len.end());
  out.insert(out.end(), value.begin(), value.end());
}

std::optional<Bytes> read_lv(ByteView wire, std::size_t& pos) {
  if (pos + 2 > wire.size()) return std::nullopt;
  const std::uint64_t len = be_value(wire.subspan(pos, 2));
  pos += 2;
  if (pos + len > wire.size()) return std::nullopt;
  Bytes value = slice_bytes(wire, pos, len);
  pos += len;
  return value;
}
}  // namespace

Bytes NgapMessage::encode() const {
  Bytes out;
  out.push_back(kNgapMagic);
  out.push_back(static_cast<std::uint8_t>(type));
  const Bytes ran = be_bytes(ran_ue_id, 8);
  const Bytes amf = be_bytes(amf_ue_id, 8);
  out.insert(out.end(), ran.begin(), ran.end());
  out.insert(out.end(), amf.begin(), amf.end());
  out.push_back(cause);
  append_lv(out, to_bytes(plmn.mcc));
  append_lv(out, to_bytes(plmn.mnc));
  append_lv(out, to_bytes(gnb_name));
  append_lv(out, nas_pdu);
  return out;
}

std::optional<NgapMessage> NgapMessage::decode(ByteView wire) {
  if (wire.size() < 19 || wire[0] != kNgapMagic) return std::nullopt;
  NgapMessage msg;
  msg.type = static_cast<NgapType>(wire[1]);
  msg.ran_ue_id = be_value(wire.subspan(2, 8));
  msg.amf_ue_id = be_value(wire.subspan(10, 8));
  msg.cause = wire[18];
  std::size_t pos = 19;
  const auto mcc = read_lv(wire, pos);
  const auto mnc = read_lv(wire, pos);
  const auto name = read_lv(wire, pos);
  const auto nas = read_lv(wire, pos);
  if (!mcc || !mnc || !name || !nas || pos != wire.size()) {
    return std::nullopt;
  }
  msg.plmn.mcc = to_string(*mcc);
  msg.plmn.mnc = to_string(*mnc);
  msg.gnb_name = to_string(*name);
  msg.nas_pdu = *nas;
  return msg;
}

NgapMessage NgapMessage::ng_setup_request(const Plmn& plmn,
                                          const std::string& gnb_name) {
  NgapMessage msg;
  msg.type = NgapType::kNgSetupRequest;
  msg.plmn = plmn;
  msg.gnb_name = gnb_name;
  return msg;
}

NgapMessage NgapMessage::initial_ue(std::uint64_t ran_ue_id,
                                    const Plmn& plmn, Bytes nas) {
  NgapMessage msg;
  msg.type = NgapType::kInitialUeMessage;
  msg.ran_ue_id = ran_ue_id;
  msg.plmn = plmn;
  msg.nas_pdu = std::move(nas);
  return msg;
}

NgapMessage NgapMessage::uplink_nas(std::uint64_t ran_ue_id,
                                    std::uint64_t amf_ue_id, Bytes nas) {
  NgapMessage msg;
  msg.type = NgapType::kUplinkNasTransport;
  msg.ran_ue_id = ran_ue_id;
  msg.amf_ue_id = amf_ue_id;
  msg.nas_pdu = std::move(nas);
  return msg;
}

NgapMessage NgapMessage::downlink_nas(std::uint64_t ran_ue_id,
                                      std::uint64_t amf_ue_id, Bytes nas) {
  NgapMessage msg;
  msg.type = NgapType::kDownlinkNasTransport;
  msg.ran_ue_id = ran_ue_id;
  msg.amf_ue_id = amf_ue_id;
  msg.nas_pdu = std::move(nas);
  return msg;
}

}  // namespace shield5g::nf
