#include "nf/nrf.h"

#include "nf/sbi.h"

namespace shield5g::nf {

Nrf::Nrf(net::Bus& bus, const std::string& name) : Vnf(name, bus) {
  register_routes();
}

void Nrf::register_routes() {
  auto& router = server_.router();

  router.add(
      net::Method::kPut, "/nnrf-nfm/v1/nf-instances/:id",
      [this](const net::RequestView& req, const net::PathParams& params) {
        const auto body = parse_body(req.body);
        if (!body) return net::HttpResponse::error(400, "bad json");
        const auto type = body->get_string("nfType");
        const auto service = body->get_string("serviceName");
        if (!type || !service) {
          return net::HttpResponse::error(400, "missing profile fields");
        }
        const std::string& id = params.at("id");
        profiles_[id] = NfProfile{id, *type, *service};
        return net::HttpResponse::json(201, std::string(req.body));
      });

  router.add(net::Method::kGet, "/nnrf-disc/v1/nf-instances/:targetType",
             [this](const net::RequestView&, const net::PathParams& params) {
               const std::string& target = params.at("targetType");
               json::Array instances;
               for (const auto& [id, profile] : profiles_) {
                 if (profile.nf_type == target) {
                   json::Object entry;
                   entry["instanceId"] = profile.instance_id;
                   entry["serviceName"] = profile.service_name;
                   instances.push_back(json::Value(entry));
                 }
               }
               if (instances.empty()) {
                 return net::HttpResponse::error(404,
                                                 "no instance of " + target);
               }
               json::Object body;
               body["nfInstances"] = json::Value(instances);
               return net::HttpResponse::json(200, json::Value(body).dump());
             });

  router.add(net::Method::kDelete, "/nnrf-nfm/v1/nf-instances/:id",
             [this](const net::RequestView&, const net::PathParams& params) {
               profiles_.erase(params.at("id"));
               return net::HttpResponse::json(204, "");
             });
}

}  // namespace shield5g::nf
