// Non-Access Stratum message codec (TS 24.501, simplified wire format).
//
// Messages carry typed information elements in a TLV container with a
// compact 3-byte header. Security is real: once the NAS security context
// is established by the Security Mode procedure, messages are integrity
// protected with a 4-byte HMAC-SHA-256 MAC keyed by K_NASint and bound
// to the NAS COUNT and direction — both the AMF and the UE verify it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/bytes.h"
#include "common/secret.h"

namespace shield5g::nf {

enum class NasType : std::uint8_t {
  kRegistrationRequest = 0x41,
  kRegistrationAccept = 0x42,
  kRegistrationComplete = 0x43,
  kRegistrationReject = 0x44,
  kDeregistrationRequest = 0x45,
  kDeregistrationAccept = 0x46,
  kAuthenticationRequest = 0x56,
  kAuthenticationResponse = 0x57,
  kAuthenticationReject = 0x58,
  kAuthenticationFailure = 0x59,
  kIdentityRequest = 0x5b,
  kIdentityResponse = 0x5c,
  kSecurityModeCommand = 0x5d,
  kSecurityModeComplete = 0x5e,
  kPduSessionEstablishmentRequest = 0xc1,
  kPduSessionEstablishmentAccept = 0xc2,
  kPduSessionEstablishmentReject = 0xc3,
};

/// Information-element identifiers used by this codec.
enum class NasIe : std::uint8_t {
  kSuci = 0x01,
  kNgKsi = 0x02,
  kGuti = 0x03,
  kRand = 0x21,
  kAutn = 0x20,
  kResStar = 0x2d,
  kAuts = 0x30,
  kCause = 0x58,
  kAbba = 0x38,
  kUeSecurityCapability = 0x2e,
  kSelectedAlgorithms = 0x2f,
  kPduSessionId = 0x12,
  kDnn = 0x25,
  kUeIp = 0x29,
  kSst = 0x16,
};

/// 5GMM cause values (subset).
enum class NasCause : std::uint8_t {
  kSynchFailure = 21,        // SQN out of range, AUTS attached
  kMacFailure = 20,
  kIllegalUe = 3,
  kPlmnNotAllowed = 11,
};

struct NasMessage {
  NasType type = NasType::kRegistrationRequest;
  std::map<NasIe, Bytes> ies;

  bool has(NasIe ie) const { return ies.count(ie) != 0; }
  const Bytes& at(NasIe ie) const;
  void set(NasIe ie, Bytes value) { ies[ie] = std::move(value); }

  /// Plain (unprotected) encoding.
  Bytes encode() const;
  static std::optional<NasMessage> decode(ByteView wire);
};

/// Integrity protection wrapper. `count` is the per-direction NAS COUNT,
/// `downlink` distinguishes AMF->UE from UE->AMF.
Bytes nas_mac(SecretView knas_int, std::uint32_t count, bool downlink,
              bool ciphered, ByteView payload);

/// NEA keystream application (AES-128-CTR with the COUNT/direction in
/// the initial counter block, TS 33.501 D.2 shape). Encrypt == decrypt.
Bytes nas_cipher(SecretView knas_enc, std::uint32_t count, bool downlink,
                 ByteView data);

struct SecuredNas {
  std::uint32_t count = 0;
  bool downlink = false;
  bool ciphered = false;
  Bytes mac;      // 4 bytes, over the (possibly ciphered) payload
  Bytes payload;  // encoded inner NasMessage; ciphertext when `ciphered`

  Bytes encode() const;
  static std::optional<SecuredNas> decode(ByteView wire);

  /// Integrity protection only (the Security Mode Command itself).
  static SecuredNas protect(const NasMessage& msg, SecretView knas_int,
                            std::uint32_t count, bool downlink);

  /// Ciphering + integrity (everything after security mode completes):
  /// encrypt-then-MAC with K_NASenc / K_NASint.
  static SecuredNas protect_ciphered(const NasMessage& msg,
                                     SecretView knas_int, SecretView knas_enc,
                                     std::uint32_t count, bool downlink);

  /// Verifies the MAC and decodes the inner message (plain payloads
  /// only; returns nullopt for ciphered messages).
  std::optional<NasMessage> verify(SecretView knas_int) const;

  /// Verifies, deciphers when needed, and decodes the inner message.
  std::optional<NasMessage> open(SecretView knas_int,
                                 SecretView knas_enc) const;
};

}  // namespace shield5g::nf
