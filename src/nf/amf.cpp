#include "nf/amf.h"

#include "common/log.h"
#include "crypto/cost.h"
#include "crypto/key_hierarchy.h"
#include "crypto/suci.h"
#include "nf/aka_core.h"
#include "nf/sbi.h"

namespace shield5g::nf {

namespace {
constexpr sim::Nanos kNasProcFixed = 2'000;
constexpr double kNasProcPerByte = 20.0;
}  // namespace

Amf::Amf(net::Bus& bus, AmfConfig config)
    : Vnf(config.name, bus), config_(std::move(config)) {
  if (config_.snn.empty()) {
    config_.snn = crypto::serving_network_name(config_.plmn.mcc,
                                               config_.plmn.mnc);
  }
}

void Amf::charge_nas(std::size_t bytes) {
  env_.compute(kNasProcFixed + static_cast<sim::Nanos>(
                                   kNasProcPerByte * double(bytes)));
}

UeState Amf::ue_state(std::uint64_t ran_ue_id) const {
  const auto it = ues_.find(ran_ue_id);
  return it == ues_.end() ? UeState::kDeregistered : it->second.state;
}

std::optional<std::string> Amf::ue_supi(std::uint64_t ran_ue_id) const {
  const auto it = ues_.find(ran_ue_id);
  if (it == ues_.end() || it->second.supi.value.empty()) return std::nullopt;
  return it->second.supi.value;
}

void Amf::release_ue(std::uint64_t ran_ue_id) { ues_.erase(ran_ue_id); }

void Amf::flush_contexts() {
  ues_.clear();
  guti_contexts_.clear();
}

Bytes Amf::protect_downlink(UeContext& ctx, const NasMessage& msg,
                            bool cipher) {
  crypto::OpMeter ops;
  const SecuredNas sec =
      cipher ? SecuredNas::protect_ciphered(msg, ctx.knas_int, ctx.knas_enc,
                                            ctx.dl_count++, true)
             : SecuredNas::protect(msg, ctx.knas_int, ctx.dl_count++, true);
  env_.compute(ops.ns(bus_.costs().primitives));
  return sec.encode();
}

Bytes Amf::send_security_mode_command(UeContext& ctx) {
  ctx.state = UeState::kSecurityMode;
  NasMessage smc;
  smc.type = NasType::kSecurityModeCommand;
  smc.set(NasIe::kSelectedAlgorithms,
          Bytes{config_.ciphering_algo, config_.integrity_algo});
  smc.set(NasIe::kNgKsi, Bytes{ctx.ngksi});
  // The SMC itself is integrity protected but not ciphered: the UE must
  // read the selected algorithms before it can derive the keys.
  return protect_downlink(ctx, smc, /*cipher=*/false);
}

std::optional<Bytes> Amf::start_authentication(UeContext& ctx) {
  json::Object body;
  if (!ctx.supi.value.empty()) {
    body["supi"] = ctx.supi.value;
  } else {
    body["suci"] = ctx.suci;
  }
  body["servingNetworkName"] = config_.snn;
  auto auth = call(config_.ausf_service,
                   json_post("/nausf-auth/v1/ue-authentications",
                             json::Value(std::move(body))));
  if (auth.response.status != 201) {
    ++auth_failures_;
    NasMessage reject;
    reject.type = NasType::kRegistrationReject;
    reject.set(NasIe::kCause,
               Bytes{static_cast<std::uint8_t>(NasCause::kIllegalUe)});
    return reject.encode();
  }
  const auto av = parse_body(auth.response.body);
  const auto ctx_id = av ? av->get_string("authCtxId") : std::nullopt;
  const auto rand = av ? hex_bytes(*av, "rand") : std::nullopt;
  const auto autn = av ? hex_bytes(*av, "autn") : std::nullopt;
  const auto hxres = av ? hex_bytes(*av, "hxresStar") : std::nullopt;
  if (!ctx_id || !rand || !autn || !hxres) return std::nullopt;

  ctx.auth_ctx_id = *ctx_id;
  ctx.rand = *rand;
  ctx.hxres_star = *hxres;
  ctx.state = UeState::kAuthenticating;

  NasMessage out;
  out.type = NasType::kAuthenticationRequest;
  out.set(NasIe::kNgKsi, Bytes{ctx.ngksi});
  out.set(NasIe::kRand, *rand);
  out.set(NasIe::kAutn, *autn);
  out.set(NasIe::kAbba, kAbba);
  return out.encode();
}

std::optional<Bytes> Amf::on_registration_request(UeContext& ctx,
                                                  const NasMessage& msg) {
  // GUTI-based re-registration: resolve the saved security context and
  // go straight to the security mode procedure, skipping a fresh AKA.
  if (msg.has(NasIe::kGuti)) {
    const std::string guti = to_string(msg.at(NasIe::kGuti));
    const auto it = guti_contexts_.find(guti);
    if (it != guti_contexts_.end()) {
      ctx = UeContext{};
      ctx.supi = it->second.supi;
      ctx.kamf = it->second.kamf;
      ctx.knas_int = it->second.knas_int;
      ctx.knas_enc = it->second.knas_enc;
      guti_contexts_.erase(it);  // a fresh GUTI is issued on accept
      ++guti_reregistrations_;
      S5G_LOG(LogLevel::kInfo, "amf")
          << "GUTI re-registration for " << ctx.supi.value;
      return send_security_mode_command(ctx);
    }
    // Unknown GUTI (e.g. AMF restarted): ask for the concealed identity.
    ctx = UeContext{};
    ctx.state = UeState::kIdentityPending;
    ++identity_requests_;
    NasMessage identity;
    identity.type = NasType::kIdentityRequest;
    return identity.encode();
  }
  if (!msg.has(NasIe::kSuci)) {
    NasMessage reject;
    reject.type = NasType::kRegistrationReject;
    reject.set(NasIe::kCause,
               Bytes{static_cast<std::uint8_t>(NasCause::kIllegalUe)});
    return reject.encode();
  }
  ctx = UeContext{};  // fresh registration resets any stale context
  ctx.suci = to_string(msg.at(NasIe::kSuci));
  // PLMN admission: the SUCI's home PLMN must be served here (the
  // paper's OTA test needed PLMN 00101 for the COTS UE to attach).
  const auto suci = crypto::Suci::from_string(ctx.suci);
  if (!suci || suci->mcc != config_.plmn.mcc ||
      suci->mnc != config_.plmn.mnc) {
    NasMessage reject;
    reject.type = NasType::kRegistrationReject;
    reject.set(NasIe::kCause,
               Bytes{static_cast<std::uint8_t>(NasCause::kPlmnNotAllowed)});
    return reject.encode();
  }
  return start_authentication(ctx);
}

std::optional<Bytes> Amf::on_auth_response(UeContext& ctx,
                                           const NasMessage& msg) {
  if (ctx.state != UeState::kAuthenticating || !msg.has(NasIe::kResStar)) {
    return std::nullopt;
  }
  const Bytes& res_star = msg.at(NasIe::kResStar);

  // HRES* check at the security edge (paper Fig. 5 "Calculate HXRES*").
  crypto::OpMeter ops;
  const Bytes hres_star =
      crypto::derive_hxres_star(ctx.rand, res_star, kHxresStarBytes);
  env_.compute(ops.ns(bus_.costs().primitives));
  if (!ct_equal(hres_star, ctx.hxres_star)) {
    ++auth_failures_;
    NasMessage reject;
    reject.type = NasType::kAuthenticationReject;
    return reject.encode();
  }

  // Confirm with the AUSF; it releases K_SEAF on success.
  json::Object confirm;
  confirm["resStar"] = hex_field(res_star);
  auto conf = call(config_.ausf_service,
                   json_put("/nausf-auth/v1/ue-authentications/" +
                                ctx.auth_ctx_id + "/5g-aka-confirmation",
                            json::Value(std::move(confirm))));
  const auto conf_body = parse_body(conf.response.body);
  const auto result =
      conf_body ? conf_body->get_string("result") : std::nullopt;
  if (conf.response.status != 200 || !result ||
      *result != "AUTHENTICATION_SUCCESS") {
    ++auth_failures_;
    NasMessage reject;
    reject.type = NasType::kAuthenticationReject;
    return reject.encode();
  }
  const auto supi = conf_body->get_string("supi");
  auto kseaf = secret_hex_bytes(*conf_body, "kseaf");
  if (!supi || !kseaf) return std::nullopt;
  ctx.supi = Supi{*supi};
  ctx.kseaf = std::move(*kseaf);

  // K_AMF: inside the eAMF P-AKA module (Table I: KSEAF in, KAMF out)
  // or locally in monolithic mode.
  if (config_.deployment == AkaDeployment::kExternal) {
    json::Object paka;
    paka["kseaf"] = secret_hex_field(ctx.kseaf, DeclassifyReason::kTransport,
                                     secret_ctx());
    paka["supi"] = ctx.supi.value;
    auto der = call(config_.eamf_service,
                    json_post("/paka/v1/derive-kamf",
                              json::Value(std::move(paka))));
    const auto der_body = parse_body(der.response.body);
    auto kamf =
        der_body ? secret_hex_bytes(*der_body, "kamf") : std::nullopt;
    if (der.response.status != 200 || !kamf) return std::nullopt;
    ctx.kamf = std::move(*kamf);
  } else {
    crypto::OpMeter kops;
    ctx.kamf = derive_kamf_for(ctx.kseaf, ctx.supi.value);
    env_.compute(kops.ns(bus_.costs().primitives));
  }

  // NAS algorithm keys stay in the AMF proper (TS 33.501 A.8).
  crypto::OpMeter kops;
  ctx.knas_enc = crypto::derive_algo_key(ctx.kamf, crypto::AlgoType::kNasEnc,
                                         config_.ciphering_algo);
  ctx.knas_int = crypto::derive_algo_key(ctx.kamf, crypto::AlgoType::kNasInt,
                                         config_.integrity_algo);
  env_.compute(kops.ns(bus_.costs().primitives));
  return send_security_mode_command(ctx);
}

std::optional<Bytes> Amf::on_identity_response(UeContext& ctx,
                                               const NasMessage& msg) {
  if (ctx.state != UeState::kIdentityPending || !msg.has(NasIe::kSuci)) {
    return std::nullopt;
  }
  ctx.suci = to_string(msg.at(NasIe::kSuci));
  return start_authentication(ctx);
}

std::optional<Bytes> Amf::on_auth_failure(UeContext& ctx,
                                          const NasMessage& msg) {
  if (ctx.state != UeState::kAuthenticating || !msg.has(NasIe::kCause)) {
    return std::nullopt;
  }
  const auto cause = static_cast<NasCause>(msg.at(NasIe::kCause).at(0));
  if (cause != NasCause::kSynchFailure || !msg.has(NasIe::kAuts)) {
    ++auth_failures_;
    NasMessage reject;
    reject.type = NasType::kAuthenticationReject;
    return reject.encode();
  }
  if (++ctx.auth_attempts > 2) {
    ++auth_failures_;
    NasMessage reject;
    reject.type = NasType::kAuthenticationReject;
    return reject.encode();
  }

  // Resynchronise through AUSF/UDM, then retry with a fresh vector.
  json::Object resync;
  resync["suci"] = ctx.suci;
  resync["rand"] = hex_field(ctx.rand);
  resync["auts"] = hex_field(msg.at(NasIe::kAuts));
  resync["servingNetworkName"] = config_.snn;
  auto res = call(config_.ausf_service,
                  json_post("/nausf-auth/v1/resync",
                            json::Value(std::move(resync))));
  if (res.response.status != 200) {
    ++auth_failures_;
    NasMessage reject;
    reject.type = NasType::kAuthenticationReject;
    return reject.encode();
  }
  ++resyncs_;
  return start_authentication(ctx);
}

std::optional<Bytes> Amf::on_security_mode_complete(UeContext& ctx) {
  if (ctx.state != UeState::kSecurityMode) return std::nullopt;
  ctx.guti = Guti{config_.plmn, 1, 1, next_tmsi_++};
  ctx.state = UeState::kRegistered;
  ++registrations_;
  guti_contexts_[ctx.guti.to_string()] =
      StoredContext{ctx.supi, ctx.kamf, ctx.knas_int, ctx.knas_enc};
  S5G_LOG(LogLevel::kInfo, "amf")
      << ctx.supi.value << " registered, GUTI " << ctx.guti.to_string();

  NasMessage accept;
  accept.type = NasType::kRegistrationAccept;
  accept.set(NasIe::kGuti, to_bytes(ctx.guti.to_string()));
  return protect_downlink(ctx, accept);
}

std::optional<Bytes> Amf::on_deregistration_request(std::uint64_t ran_ue_id,
                                                    UeContext& ctx) {
  if (ctx.state != UeState::kRegistered) return std::nullopt;
  // Release every PDU session at the SMF, then the NAS context.
  for (const auto& [session_id, ip] : ctx.pdu_sessions) {
    net::HttpRequest del;
    del.method = net::Method::kDelete;
    del.path = "/nsmf-pdusession/v1/sm-contexts/" + ctx.supi.value + "/" +
               std::to_string(session_id);
    call(config_.smf_service, del);
  }
  guti_contexts_.erase(ctx.guti.to_string());
  ++deregistrations_;
  S5G_LOG(LogLevel::kInfo, "amf") << ctx.supi.value << " deregistered";

  NasMessage accept;
  accept.type = NasType::kDeregistrationAccept;
  const Bytes response = protect_downlink(ctx, accept);
  ues_.erase(ran_ue_id);
  return response;
}

std::optional<Bytes> Amf::on_pdu_session_request(UeContext& ctx,
                                                 const NasMessage& msg) {
  if (ctx.state != UeState::kRegistered) return std::nullopt;
  const std::uint8_t session_id =
      msg.has(NasIe::kPduSessionId) ? msg.at(NasIe::kPduSessionId).at(0) : 1;
  const std::string dnn =
      msg.has(NasIe::kDnn) ? to_string(msg.at(NasIe::kDnn)) : "internet";

  json::Object sm;
  sm["supi"] = ctx.supi.value;
  sm["pduSessionId"] = static_cast<std::int64_t>(session_id);
  sm["dnn"] = dnn;
  auto create = call(config_.smf_service,
                     json_post("/nsmf-pdusession/v1/sm-contexts",
                               json::Value(sm)));
  if (create.response.status == 409) {
    // Stale context from a previous registration of this UE (e.g. a
    // GUTI re-registration after idle): release and re-establish.
    net::HttpRequest del;
    del.method = net::Method::kDelete;
    del.path = "/nsmf-pdusession/v1/sm-contexts/" + ctx.supi.value + "/" +
               std::to_string(session_id);
    call(config_.smf_service, del);
    create = call(config_.smf_service,
                  json_post("/nsmf-pdusession/v1/sm-contexts",
                            json::Value(std::move(sm))));
  }
  const auto created = parse_body(create.response.body);
  const auto ue_ip = created ? created->get_string("ueIp") : std::nullopt;
  if (create.response.status != 201 || !ue_ip) {
    NasMessage reject;
    reject.type = NasType::kPduSessionEstablishmentReject;
    reject.set(NasIe::kPduSessionId, Bytes{session_id});
    return protect_downlink(ctx, reject);
  }
  ctx.pdu_sessions[session_id] = *ue_ip;

  NasMessage accept;
  accept.type = NasType::kPduSessionEstablishmentAccept;
  accept.set(NasIe::kPduSessionId, Bytes{session_id});
  accept.set(NasIe::kUeIp, to_bytes(*ue_ip));
  return protect_downlink(ctx, accept);
}

std::optional<Bytes> Amf::handle_uplink(std::uint64_t ran_ue_id,
                                        ByteView nas) {
  charge_nas(nas.size());
  UeContext& ctx = ues_[ran_ue_id];

  // Secured messages (post security-mode) first.
  if (!nas.empty() && nas[0] == 0x7f) {
    const auto sec = SecuredNas::decode(nas);
    if (!sec) return std::nullopt;
    crypto::OpMeter ops;
    const auto inner = sec->open(ctx.knas_int, ctx.knas_enc);
    env_.compute(ops.ns(bus_.costs().primitives));
    if (!inner || sec->count != ctx.ul_count) {
      S5G_LOG(LogLevel::kWarn, "amf") << "NAS integrity failure";
      return std::nullopt;
    }
    ++ctx.ul_count;
    switch (inner->type) {
      case NasType::kSecurityModeComplete:
        return on_security_mode_complete(ctx);
      case NasType::kRegistrationComplete:
        return std::nullopt;  // procedure done, no response
      case NasType::kPduSessionEstablishmentRequest:
        return on_pdu_session_request(ctx, *inner);
      case NasType::kDeregistrationRequest:
        return on_deregistration_request(ran_ue_id, ctx);
      default:
        return std::nullopt;
    }
  }

  const auto msg = NasMessage::decode(nas);
  if (!msg) return std::nullopt;
  switch (msg->type) {
    case NasType::kRegistrationRequest:
      return on_registration_request(ctx, *msg);
    case NasType::kIdentityResponse:
      return on_identity_response(ctx, *msg);
    case NasType::kAuthenticationResponse:
      return on_auth_response(ctx, *msg);
    case NasType::kAuthenticationFailure:
      return on_auth_failure(ctx, *msg);
    default:
      return std::nullopt;
  }
}


std::optional<Bytes> Amf::handle_ngap(ByteView ngap_wire) {
  const auto msg = NgapMessage::decode(ngap_wire);
  if (!msg) return std::nullopt;

  switch (msg->type) {
    case NgapType::kNgSetupRequest: {
      NgapMessage resp;
      if (msg->plmn == config_.plmn) {
        ++ng_setups_;
        resp.type = NgapType::kNgSetupResponse;
        resp.gnb_name = config_.name;
        S5G_LOG(LogLevel::kInfo, "amf")
            << "NG Setup from " << msg->gnb_name;
      } else {
        resp.type = NgapType::kNgSetupFailure;
        resp.cause = static_cast<std::uint8_t>(NasCause::kPlmnNotAllowed);
      }
      return resp.encode();
    }
    case NgapType::kInitialUeMessage: {
      if (!(msg->plmn == config_.plmn)) return std::nullopt;
      const std::uint64_t amf_ue_id = next_amf_ue_id_++;
      ran_to_amf_id_[msg->ran_ue_id] = amf_ue_id;
      const auto downlink = handle_uplink(msg->ran_ue_id, msg->nas_pdu);
      if (!downlink) return std::nullopt;
      return NgapMessage::downlink_nas(msg->ran_ue_id, amf_ue_id,
                                       *downlink)
          .encode();
    }
    case NgapType::kUplinkNasTransport: {
      const auto it = ran_to_amf_id_.find(msg->ran_ue_id);
      if (it == ran_to_amf_id_.end() || it->second != msg->amf_ue_id) {
        return std::nullopt;  // stale or forged UE association
      }
      const auto downlink = handle_uplink(msg->ran_ue_id, msg->nas_pdu);
      if (!downlink) return std::nullopt;
      return NgapMessage::downlink_nas(msg->ran_ue_id, msg->amf_ue_id,
                                       *downlink)
          .encode();
    }
    case NgapType::kUeContextReleaseCommand: {
      release_ue(msg->ran_ue_id);
      ran_to_amf_id_.erase(msg->ran_ue_id);
      NgapMessage resp;
      resp.type = NgapType::kUeContextReleaseComplete;
      resp.ran_ue_id = msg->ran_ue_id;
      return resp.encode();
    }
    default:
      return std::nullopt;
  }
}

}  // namespace shield5g::nf
