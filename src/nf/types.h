// Shared control-plane vocabulary: identifiers, subscriber records and
// authentication vectors (TS 23.003, TS 33.501).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/secret.h"

namespace shield5g::nf {

struct Plmn {
  std::string mcc = "001";  // paper's OTA test PLMN 001/01
  std::string mnc = "01";

  std::string id() const { return mcc + mnc; }
  bool operator==(const Plmn&) const = default;
};

/// SUPI in IMSI format: "<mcc><mnc><msin>".
struct Supi {
  std::string value;

  static Supi from_parts(const Plmn& plmn, const std::string& msin) {
    return Supi{plmn.mcc + plmn.mnc + msin};
  }
  bool operator==(const Supi&) const = default;
  auto operator<=>(const Supi&) const = default;
};

/// 5G-GUTI: PLMN + AMF identifiers + 32-bit TMSI.
struct Guti {
  Plmn plmn;
  std::uint8_t amf_region = 1;
  std::uint16_t amf_set = 1;
  std::uint32_t tmsi = 0;

  std::string to_string() const;
  bool operator==(const Guti&) const = default;
};

/// UDR-side subscriber credential record. The long-term key K is stored
/// here for the monolithic / container baselines; in the SGX deployment
/// the eUDM P-AKA module receives the K table as a sealed blob at
/// provisioning time and the per-request flow carries only the Table I
/// parameters (OPc, RAND, SQN, AMFid).
struct SubscriberRecord {
  Supi supi;
  SecretBytes k;    // 16 bytes — long-term subscriber key
  SecretBytes opc;  // 16 bytes — derived operator code
  std::uint64_t sqn = 0;      // 48-bit sequence number
  Bytes amf_field = {0x80, 0x00};  // AMF authentication field (TS 33.102)

  Bytes sqn_bytes() const { return be_bytes(sqn, 6); }
};

/// Home-environment authentication vector (UDM -> AUSF, paper Fig. 5).
/// RAND/AUTN/XRES* are protocol material; K_AUSF is tainted and only
/// crosses the UDM->AUSF SBI hop via an audited kTransport declassify.
struct HeAv {
  Bytes rand;          // 16
  Bytes autn;          // 16
  Bytes xres_star;     // 16
  SecretBytes kausf;   // 32
};

/// Security-edge authentication vector (AUSF -> AMF).
struct SeAv {
  Bytes rand;        // 16
  Bytes autn;        // 16
  Bytes hxres_star;  // 8 (paper Table I; the spec's 16-byte value
                     // truncated consistently on both sides)
};

/// HXRES*/HRES* length used by the paper's modules (Table I).
inline constexpr std::size_t kHxresStarBytes = 8;

/// ABBA parameter (TS 33.501 A.7.1): 0x0000 for this release.
inline const Bytes kAbba = {0x00, 0x00};

}  // namespace shield5g::nf
