// Network Repository Function: VNF profile registry and mutual
// discovery (paper §II-A).
#pragma once

#include <map>
#include <string>

#include "nf/vnf.h"

namespace shield5g::nf {

struct NfProfile {
  std::string instance_id;
  std::string nf_type;       // "UDM", "AUSF", ...
  std::string service_name;  // bus attachment name
};

class Nrf : public Vnf {
 public:
  explicit Nrf(net::Bus& bus, const std::string& name = "nrf");

  std::size_t registered_count() const noexcept { return profiles_.size(); }

 private:
  void register_routes();

  std::map<std::string, NfProfile> profiles_;  // by instance id
};

}  // namespace shield5g::nf
