#include "nf/ausf.h"

#include "common/log.h"
#include "nf/aka_core.h"
#include "nf/sbi.h"

namespace shield5g::nf {

Ausf::Ausf(net::Bus& bus, AusfConfig config)
    : Vnf(config.name, bus), config_(std::move(config)) {
  register_routes();
}

void Ausf::register_routes() {
  auto& router = server_.router();

  // Nausf_UEAuthentication_Authenticate: phase 1 of 5G-AKA.
  router.add(
      net::Method::kPost, "/nausf-auth/v1/ue-authentications",
      [this](const net::RequestView& req, const net::PathParams&) {
        const auto body = parse_body(req.body);
        if (!body) return net::HttpResponse::error(400, "bad json");
        const auto snn = body->get_string("servingNetworkName");
        if (!snn) return net::HttpResponse::error(400, "missing SNN");
        // SN authentication-service authorization check (paper §II-A).
        if (!config_.allowed_snns.empty() &&
            config_.allowed_snns.count(*snn) == 0) {
          return net::HttpResponse::error(403, "serving network not allowed");
        }

        // Forward identity to the UDM for HE AV generation.
        json::Object fwd;
        if (const auto suci = body->get_string("suci")) {
          fwd["suci"] = *suci;
        } else if (const auto supi = body->get_string("supi")) {
          fwd["supi"] = *supi;
        } else {
          return net::HttpResponse::error(400, "missing identity");
        }
        fwd["servingNetworkName"] = *snn;
        auto gen = call(config_.udm_service,
                        json_post("/nudm-ueau/v1/generate-auth-data",
                                  json::Value(std::move(fwd))));
        if (gen.response.status != 200) {
          return net::HttpResponse::error(gen.response.status,
                                          "UDM AV generation failed");
        }
        const auto av = parse_body(gen.response.body);
        if (!av) return net::HttpResponse::error(500, "bad UDM payload");
        const auto supi = av->get_string("supi");
        const auto rand = hex_bytes(*av, "rand");
        const auto autn = hex_bytes(*av, "autn");
        const auto xres_star = hex_bytes(*av, "xresStar");
        const auto kausf = secret_hex_bytes(*av, "kausf");
        if (!supi || !rand || !autn || !xres_star || !kausf) {
          return net::HttpResponse::error(500, "incomplete HE AV");
        }

        // Derive the SE AV: HXRES* and K_SEAF.
        Bytes hxres_star;
        SecretBytes kseaf;
        if (config_.deployment == AkaDeployment::kExternal) {
          json::Object paka;
          paka["rand"] = hex_field(*rand);
          paka["xresStar"] = hex_field(*xres_star);
          paka["snn"] = *snn;
          paka["kausf"] = secret_hex_field(
              *kausf, DeclassifyReason::kTransport, secret_ctx());
          auto der = call(config_.eausf_service,
                          json_post("/paka/v1/derive-se",
                                    json::Value(std::move(paka))));
          if (der.response.status != 200) {
            return net::HttpResponse::error(500, "eAUSF P-AKA failure");
          }
          const auto der_body = parse_body(der.response.body);
          const auto hx = der_body ? hex_bytes(*der_body, "hxresStar")
                                   : std::nullopt;
          auto ks = der_body ? secret_hex_bytes(*der_body, "kseaf")
                             : std::nullopt;
          if (!hx || !ks) {
            return net::HttpResponse::error(500, "incomplete P-AKA output");
          }
          hxres_star = *hx;
          kseaf = std::move(*ks);
        } else {
          auto se = derive_se(*rand, *xres_star, *kausf, *snn);
          hxres_star = std::move(se.hxres_star);
          kseaf = std::move(se.kseaf);
        }

        const std::string ctx_id = "authctx-" + std::to_string(next_ctx_id_++);
        contexts_[ctx_id] =
            AuthContext{Supi{*supi}, *snn, *rand, *xres_star, std::move(kseaf)};

        json::Object out;
        out["authCtxId"] = ctx_id;
        out["rand"] = hex_field(*rand);
        out["autn"] = hex_field(*autn);
        out["hxresStar"] = hex_field(hxres_star);
        return net::HttpResponse::json(201, json::Value(out).dump());
      });

  // Phase 2: RES* confirmation.
  router.add(
      net::Method::kPut,
      "/nausf-auth/v1/ue-authentications/:ctxId/5g-aka-confirmation",
      [this](const net::RequestView& req, const net::PathParams& params) {
        const auto it = contexts_.find(params.at("ctxId"));
        if (it == contexts_.end()) {
          return net::HttpResponse::error(404, "unknown auth context");
        }
        const auto body = parse_body(req.body);
        const auto res_star =
            body ? hex_bytes(*body, "resStar") : std::nullopt;
        if (!res_star) return net::HttpResponse::error(400, "missing RES*");

        AuthContext ctx = it->second;
        contexts_.erase(it);  // single-use context
        if (!ct_equal(*res_star, ctx.xres_star)) {
          S5G_LOG(LogLevel::kWarn, "ausf")
              << "RES* mismatch for " << ctx.supi.value;
          json::Object out;
          out["result"] = "AUTHENTICATION_FAILURE";
          return net::HttpResponse::json(200, json::Value(out).dump());
        }

        // Inform the home network of the successful authentication.
        json::Object event;
        event["success"] = true;
        event["servingNetworkName"] = ctx.snn;
        call(config_.udm_service,
             json_post("/nudm-ueau/v1/" + ctx.supi.value + "/auth-events",
                       json::Value(std::move(event))));

        json::Object out;
        out["result"] = "AUTHENTICATION_SUCCESS";
        out["supi"] = ctx.supi.value;
        out["kseaf"] = secret_hex_field(ctx.kseaf, DeclassifyReason::kTransport,
                                        secret_ctx());
        return net::HttpResponse::json(200, json::Value(out).dump());
      });

  // Resynchronisation pass-through to the UDM.
  router.add(net::Method::kPost, "/nausf-auth/v1/resync",
             [this](const net::RequestView& req, const net::PathParams&) {
               auto fwd = call(config_.udm_service,
                               json_post("/nudm-ueau/v1/resync",
                                         parse_body(req.body)
                                             ? *parse_body(req.body)
                                             : json::Value(json::Object{})));
               return fwd.response;
             });
}

}  // namespace shield5g::nf
