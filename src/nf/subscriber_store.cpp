#include "nf/subscriber_store.h"

#include <stdexcept>

namespace shield5g::nf {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::size_t kInitialSlots = 64;

// Max fill before the slot array doubles. 13/16 keeps probe chains
// short while wasting at most ~1.25 slots (5 bytes) per subscriber.
bool over_fill(std::size_t rows, std::size_t slots) noexcept {
  return rows * 16 >= slots * 13;
}

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = kInitialSlots;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

std::uint64_t supi_hash(std::string_view supi) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : supi) {
    h = (h ^ static_cast<std::uint8_t>(c)) * kFnvPrime;
  }
  return h;
}

SubscriberStore::SubscriberStore() : index_(kInitialSlots, 0u) {}

void SubscriberStore::reserve(std::size_t n) {
  supi_.reserve(n);
  k_.reserve(n);
  opc_.reserve(n);
  sqn_.reserve(n);
  amf_.reserve(n);
  const std::size_t slots = next_pow2(n * 2);
  if (slots > index_.size()) rehash(slots);
}

std::uint32_t SubscriberStore::find_slot(std::string_view supi) const noexcept {
  const std::size_t mask = index_.size() - 1;
  std::size_t i = static_cast<std::size_t>(supi_hash(supi)) & mask;
  while (index_[i] != 0 && supi_[index_[i] - 1] != supi) {
    i = (i + 1) & mask;
  }
  return static_cast<std::uint32_t>(i);
}

std::uint32_t SubscriberStore::row(std::string_view supi) const noexcept {
  const std::uint32_t slot = index_[find_slot(supi)];
  return slot == 0 ? kNoRow : slot - 1;
}

std::uint32_t SubscriberStore::provision(const SubscriberRecord& record) {
  if (record.k.size() != 16 || record.opc.size() != 16) {
    throw std::invalid_argument("SubscriberStore: K/OPc must be 16 bytes");
  }
  if (record.amf_field.size() != 2) {
    throw std::invalid_argument("SubscriberStore: AMF field must be 2 bytes");
  }
  if (over_fill(supi_.size() + 1, index_.size())) rehash(index_.size() * 2);

  const std::uint32_t slot = find_slot(record.supi.value);
  std::uint32_t r = index_[slot];
  if (r == 0) {
    // New row: intern the identity once; the row index is stable from
    // here on (a later replace reuses it).
    supi_.push_back(ids_.intern(record.supi.value));
    k_.emplace_back();
    opc_.emplace_back();
    sqn_.push_back(0);
    amf_.push_back({});
    r = static_cast<std::uint32_t>(supi_.size());
    index_[slot] = r;
  }
  const std::uint32_t row = r - 1;
  // Taint-preserving copy into the fixed columns (secret -> secret; the
  // raw range never reaches a sink here).
  k_[row] = Secret<16>(record.k.unsafe_bytes());
  opc_[row] = Secret<16>(record.opc.unsafe_bytes());
  sqn_[row] = record.sqn;
  amf_[row][0] = record.amf_field[0];
  amf_[row][1] = record.amf_field[1];
  return row;
}

void SubscriberStore::rehash(std::size_t slots) {
  index_.assign(slots, 0u);
  const std::size_t mask = slots - 1;
  for (std::uint32_t r = 0; r < supi_.size(); ++r) {
    std::size_t i = static_cast<std::size_t>(supi_hash(supi_[r])) & mask;
    while (index_[i] != 0) i = (i + 1) & mask;
    index_[i] = r + 1;
  }
}

std::size_t SubscriberStore::bytes_reserved() const noexcept {
  return index_.capacity() * sizeof(std::uint32_t) +
         supi_.capacity() * sizeof(std::string_view) +
         k_.capacity() * sizeof(Secret<16>) +
         opc_.capacity() * sizeof(Secret<16>) +
         sqn_.capacity() * sizeof(std::uint64_t) +
         amf_.capacity() * sizeof(std::array<std::uint8_t, 2>) +
         ids_.bytes_reserved();
}

}  // namespace shield5g::nf
