#include "nf/aka_core.h"

#include <stdexcept>

#include "crypto/key_hierarchy.h"
#include "crypto/milenage.h"

namespace shield5g::nf {

namespace {
// The AMF field used for resynchronisation is all-zero (TS 33.102).
const Bytes kResyncAmf = {0x00, 0x00};
}  // namespace

HeAv generate_he_av(SecretView k, SecretView opc, ByteView rand,
                    ByteView sqn6, ByteView amf_field,
                    const std::string& snn) {
  return generate_he_av(crypto::Milenage(k, opc), rand, sqn6, amf_field, snn);
}

HeAv generate_he_av(const crypto::Milenage& milenage, ByteView rand,
                    ByteView sqn6, ByteView amf_field,
                    const std::string& snn) {
  const auto out = milenage.compute(rand, sqn6, amf_field);

  HeAv av;
  av.rand = Bytes(rand.begin(), rand.end());
  av.autn = crypto::build_autn(sqn6, out.ak, amf_field, out.mac_a);
  av.xres_star =
      crypto::derive_res_star(out.ck, out.ik, snn, rand, out.res);
  const Bytes sqn_xor_ak = xor_bytes(sqn6, out.ak);
  av.kausf = crypto::derive_kausf(out.ck, out.ik, snn, sqn_xor_ak);
  return av;
}

SeDerivation derive_se(ByteView rand, ByteView xres_star, SecretView kausf,
                       const std::string& snn) {
  SeDerivation out;
  out.hxres_star =
      crypto::derive_hxres_star(rand, xres_star, kHxresStarBytes);
  out.kseaf = crypto::derive_kseaf(kausf, snn);
  return out;
}

SecretBytes derive_kamf_for(SecretView kseaf, const std::string& supi) {
  return crypto::derive_kamf(kseaf, supi, kAbba);
}

std::optional<Bytes> resync_verify(SecretView k, SecretView opc,
                                   ByteView rand, ByteView auts) {
  return resync_verify(crypto::Milenage(k, opc), rand, auts);
}

std::optional<Bytes> resync_verify(const crypto::Milenage& milenage,
                                   ByteView rand, ByteView auts) {
  if (auts.size() != 14) return std::nullopt;
  const auto out = milenage.compute_f2345(rand);

  const Bytes sqn_ms = xor_bytes(take(auts, 6), out.ak_s);
  Bytes mac_s, mac_a;
  milenage.compute_f1(rand, sqn_ms, kResyncAmf, mac_a, mac_s);
  if (!ct_equal(mac_s, slice_bytes(auts, 6, 8))) return std::nullopt;
  return sqn_ms;
}

Bytes build_auts(SecretView k, SecretView opc, ByteView rand,
                 ByteView sqn_ms) {
  return build_auts(crypto::Milenage(k, opc), rand, sqn_ms);
}

Bytes build_auts(const crypto::Milenage& milenage, ByteView rand,
                 ByteView sqn_ms) {
  const auto out = milenage.compute_f2345(rand);
  Bytes mac_a, mac_s;
  milenage.compute_f1(rand, sqn_ms, kResyncAmf, mac_a, mac_s);
  const Bytes concealed = xor_bytes(sqn_ms, out.ak_s);
  return concat({ByteView(concealed), ByteView(mac_s)});
}

}  // namespace shield5g::nf
