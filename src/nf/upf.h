// User Plane Function: N4-controlled session anchor.
//
// The control-plane experiments only need the UPF as the PDU-session
// anchor the SMF programs over N4 (PFCP); the model keeps real session
// state (TEIDs, UE IPs) and charges the PFCP round-trip latency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "sim/clock.h"

namespace shield5g::nf {

struct UpfSession {
  std::string supi;
  std::uint8_t pdu_session_id = 0;
  std::uint32_t teid = 0;
  std::string ue_ip;
  std::string dnn;
};

class Upf {
 public:
  explicit Upf(sim::VirtualClock& clock) : clock_(clock) {}

  /// N4 session establishment; allocates a TEID and a UE IP.
  UpfSession n4_establish(const std::string& supi,
                          std::uint8_t pdu_session_id,
                          const std::string& dnn);

  /// N4 session release. Returns false for an unknown TEID.
  bool n4_release(std::uint32_t teid);

  std::optional<UpfSession> find(std::uint32_t teid) const;
  std::size_t session_count() const noexcept { return sessions_.size(); }

  /// Modeled PFCP request/response on the same host.
  static constexpr sim::Nanos kPfcpRtt = 320 * sim::kMicrosecond;

 private:
  sim::VirtualClock& clock_;
  std::map<std::uint32_t, UpfSession> sessions_;
  std::uint32_t next_teid_ = 0x100;
  std::uint32_t next_ip_suffix_ = 2;
};

}  // namespace shield5g::nf
