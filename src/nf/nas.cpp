#include "nf/nas.h"

#include <stdexcept>

#include <algorithm>

#include "crypto/aes128.h"
#include "crypto/hmac_sha256.h"

namespace shield5g::nf {

namespace {
constexpr std::uint8_t kPlainEpd = 0x7e;    // 5GMM, plain
constexpr std::uint8_t kSecuredEpd = 0x7f;  // integrity protected
}  // namespace

const Bytes& NasMessage::at(NasIe ie) const {
  const auto it = ies.find(ie);
  if (it == ies.end()) {
    throw std::out_of_range("NasMessage: missing IE " +
                            std::to_string(static_cast<int>(ie)));
  }
  return it->second;
}

Bytes NasMessage::encode() const {
  Bytes out;
  out.push_back(kPlainEpd);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(static_cast<std::uint8_t>(ies.size()));
  for (const auto& [ie, value] : ies) {
    if (value.size() > 0xffff) {
      throw std::invalid_argument("NasMessage: IE too long");
    }
    out.push_back(static_cast<std::uint8_t>(ie));
    out.push_back(static_cast<std::uint8_t>(value.size() >> 8));
    out.push_back(static_cast<std::uint8_t>(value.size() & 0xff));
    out.insert(out.end(), value.begin(), value.end());
  }
  return out;
}

std::optional<NasMessage> NasMessage::decode(ByteView wire) {
  if (wire.size() < 3 || wire[0] != kPlainEpd) return std::nullopt;
  NasMessage msg;
  msg.type = static_cast<NasType>(wire[1]);
  const std::size_t count = wire[2];
  std::size_t pos = 3;
  for (std::size_t i = 0; i < count; ++i) {
    if (pos + 3 > wire.size()) return std::nullopt;
    const auto ie = static_cast<NasIe>(wire[pos]);
    const std::size_t len =
        (static_cast<std::size_t>(wire[pos + 1]) << 8) | wire[pos + 2];
    pos += 3;
    if (pos + len > wire.size()) return std::nullopt;
    msg.ies[ie] = slice_bytes(wire, pos, len);
    pos += len;
  }
  if (pos != wire.size()) return std::nullopt;
  return msg;
}

Bytes nas_mac(SecretView knas_int, std::uint32_t count, bool downlink,
              bool ciphered, ByteView payload) {
  const Bytes header = concat(
      {ByteView(be_bytes(count, 4)),
       ByteView(Bytes{static_cast<std::uint8_t>((downlink ? 1 : 0) |
                                                (ciphered ? 2 : 0))})});
  return crypto::hmac_sha256_trunc(
      knas_int.unsafe_bytes(), concat({ByteView(header), payload}), 4);
}

Bytes nas_cipher(SecretView knas_enc, std::uint32_t count, bool downlink,
                 ByteView data) {
  Bytes icb(16, 0);
  const Bytes c = be_bytes(count, 4);
  std::copy(c.begin(), c.end(), icb.begin());
  icb[4] = downlink ? 0x04 : 0x00;  // direction bit in the bearer octet
  return crypto::aes128_ctr(knas_enc.unsafe_bytes(), icb, data);
}

Bytes SecuredNas::encode() const {
  Bytes out;
  out.push_back(kSecuredEpd);
  const Bytes c = be_bytes(count, 4);
  out.insert(out.end(), c.begin(), c.end());
  out.push_back(static_cast<std::uint8_t>((downlink ? 1 : 0) |
                                          (ciphered ? 2 : 0)));
  out.insert(out.end(), mac.begin(), mac.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<SecuredNas> SecuredNas::decode(ByteView wire) {
  if (wire.size() < 1 + 4 + 1 + 4 || wire[0] != kSecuredEpd) {
    return std::nullopt;
  }
  SecuredNas sec;
  sec.count = static_cast<std::uint32_t>(be_value(wire.subspan(1, 4)));
  if ((wire[5] & ~0x03) != 0) return std::nullopt;  // unknown flag bits
  sec.downlink = (wire[5] & 1) != 0;
  sec.ciphered = (wire[5] & 2) != 0;
  sec.mac = slice_bytes(wire, 6, 4);
  sec.payload = Bytes(wire.begin() + 10, wire.end());
  return sec;
}

SecuredNas SecuredNas::protect(const NasMessage& msg, SecretView knas_int,
                               std::uint32_t count, bool downlink) {
  SecuredNas sec;
  sec.count = count;
  sec.downlink = downlink;
  sec.payload = msg.encode();
  sec.mac = nas_mac(knas_int, count, downlink, false, sec.payload);
  return sec;
}

SecuredNas SecuredNas::protect_ciphered(const NasMessage& msg,
                                        SecretView knas_int,
                                        SecretView knas_enc,
                                        std::uint32_t count, bool downlink) {
  SecuredNas sec;
  sec.count = count;
  sec.downlink = downlink;
  sec.ciphered = true;
  sec.payload = nas_cipher(knas_enc, count, downlink, msg.encode());
  sec.mac = nas_mac(knas_int, count, downlink, true, sec.payload);
  return sec;
}

std::optional<NasMessage> SecuredNas::verify(SecretView knas_int) const {
  const Bytes expected = nas_mac(knas_int, count, downlink, ciphered, payload);
  if (!ct_equal(expected, mac)) return std::nullopt;
  if (ciphered) return std::nullopt;  // caller must use open()
  return NasMessage::decode(payload);
}

std::optional<NasMessage> SecuredNas::open(SecretView knas_int,
                                           SecretView knas_enc) const {
  const Bytes expected = nas_mac(knas_int, count, downlink, ciphered, payload);
  if (!ct_equal(expected, mac)) return std::nullopt;
  if (!ciphered) return NasMessage::decode(payload);
  if (knas_enc.size() != 16) return std::nullopt;
  return NasMessage::decode(nas_cipher(knas_enc, count, downlink, payload));
}

}  // namespace shield5g::nf
