// Access and Mobility Management Function: terminates NAS signaling,
// drives 5G-AKA against the AUSF, runs the Security Mode procedure and
// anchors PDU session establishment at the SMF (paper §II-A, Fig. 5).
//
// The gNB delivers uplink NAS PDUs through handle_uplink(); the returned
// bytes are the downlink NAS response (absent when no response is due).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "nf/nas.h"
#include "nf/ngap.h"
#include "nf/types.h"
#include "nf/udm.h"
#include "nf/vnf.h"

namespace shield5g::nf {

struct AmfConfig {
  std::string name = "amf";
  std::string ausf_service = "ausf";
  std::string smf_service = "smf";
  std::string eamf_service = "eamf-aka";
  AkaDeployment deployment = AkaDeployment::kExternal;
  Plmn plmn;
  std::string snn;  // serving network name, derived from the PLMN
  /// Selected NAS algorithm identifiers (5G-EA2/5G-IA2 analogues).
  std::uint8_t ciphering_algo = 2;
  std::uint8_t integrity_algo = 2;
};

enum class UeState {
  kDeregistered,
  kIdentityPending,  // Identity Request sent (unknown GUTI)
  kAuthenticating,
  kSecurityMode,
  kRegistered,
};

class Amf : public Vnf {
 public:
  Amf(net::Bus& bus, AmfConfig config);

  const AmfConfig& config() const noexcept { return config_; }
  void set_deployment(AkaDeployment mode) noexcept {
    config_.deployment = mode;
  }

  /// N1: one uplink NAS PDU in, at most one downlink NAS PDU out.
  std::optional<Bytes> handle_uplink(std::uint64_t ran_ue_id, ByteView nas);

  /// N2: one NGAP PDU in, at most one NGAP PDU out. Handles NG Setup
  /// (with PLMN admission), the NAS transport procedures (allocating
  /// AMF UE NGAP IDs) and UE context release.
  std::optional<Bytes> handle_ngap(ByteView ngap_wire);

  std::uint64_t ng_setups() const noexcept { return ng_setups_; }

  /// Introspection for tests and benches.
  UeState ue_state(std::uint64_t ran_ue_id) const;
  std::optional<std::string> ue_supi(std::uint64_t ran_ue_id) const;
  std::uint64_t registrations_completed() const noexcept {
    return registrations_;
  }
  std::uint64_t auth_failures() const noexcept { return auth_failures_; }
  std::uint64_t resyncs() const noexcept { return resyncs_; }
  /// Re-registrations resolved from a known GUTI (no fresh AKA run).
  std::uint64_t guti_reregistrations() const noexcept {
    return guti_reregistrations_;
  }
  std::uint64_t identity_requests() const noexcept {
    return identity_requests_;
  }
  std::uint64_t deregistrations() const noexcept { return deregistrations_; }

  /// Releases a UE context (deregistration / RAN release).
  void release_ue(std::uint64_t ran_ue_id);

  /// Drops all UE and GUTI state (AMF restart / failover): returning
  /// UEs with stale GUTIs are sent through the Identity Request path.
  void flush_contexts();

 private:
  struct UeContext {
    UeState state = UeState::kDeregistered;
    std::string suci;
    Supi supi;
    std::string auth_ctx_id;
    Bytes rand;
    Bytes hxres_star;
    SecretBytes kseaf;
    SecretBytes kamf;
    SecretBytes knas_int;
    SecretBytes knas_enc;
    std::uint32_t dl_count = 0;
    std::uint32_t ul_count = 0;
    std::uint8_t ngksi = 0;
    Guti guti;
    std::uint8_t auth_attempts = 0;
    std::map<std::uint8_t, std::string> pdu_sessions;  // id -> UE IP
  };

  /// Saved security context for GUTI-based re-registration.
  struct StoredContext {
    Supi supi;
    SecretBytes kamf;
    SecretBytes knas_int;
    SecretBytes knas_enc;
  };

  std::optional<Bytes> start_authentication(UeContext& ctx);
  std::optional<Bytes> on_registration_request(UeContext& ctx,
                                               const NasMessage& msg);
  std::optional<Bytes> on_identity_response(UeContext& ctx,
                                            const NasMessage& msg);
  std::optional<Bytes> on_auth_response(UeContext& ctx,
                                        const NasMessage& msg);
  std::optional<Bytes> on_auth_failure(UeContext& ctx, const NasMessage& msg);
  std::optional<Bytes> on_security_mode_complete(UeContext& ctx);
  std::optional<Bytes> on_pdu_session_request(UeContext& ctx,
                                              const NasMessage& msg);
  std::optional<Bytes> on_deregistration_request(std::uint64_t ran_ue_id,
                                                 UeContext& ctx);
  Bytes send_security_mode_command(UeContext& ctx);

  /// Downlink protection: integrity-only for the Security Mode Command,
  /// ciphered + integrity for everything after.
  Bytes protect_downlink(UeContext& ctx, const NasMessage& msg,
                         bool cipher = true);
  void charge_nas(std::size_t bytes);

  AmfConfig config_;
  std::map<std::uint64_t, UeContext> ues_;
  std::map<std::string, StoredContext> guti_contexts_;
  std::map<std::uint64_t, std::uint64_t> ran_to_amf_id_;
  std::uint64_t next_amf_ue_id_ = 0x100;
  std::uint64_t ng_setups_ = 0;
  std::uint32_t next_tmsi_ = 0x1000;
  std::uint64_t registrations_ = 0;
  std::uint64_t auth_failures_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t guti_reregistrations_ = 0;
  std::uint64_t identity_requests_ = 0;
  std::uint64_t deregistrations_ = 0;
};

}  // namespace shield5g::nf
