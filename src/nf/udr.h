// Unified Data Repository: the credential storage unit (paper §II-A).
//
// Stores subscriber records and owns SQN management: each authentication
// vector request atomically increments the subscriber's SQN; a
// resynchronisation writes the UE-reported SQNms back.
#pragma once

#include <map>
#include <optional>

#include "nf/types.h"
#include "nf/vnf.h"

namespace shield5g::nf {

class Udr : public Vnf {
 public:
  explicit Udr(net::Bus& bus, const std::string& name = "udr");

  /// Provisioning-plane insert/replace (not part of the SBI).
  void provision(SubscriberRecord record);

  /// Direct read access for the orchestrator (e.g. to seal the K table
  /// into the eUDM enclave at deployment time).
  const SubscriberRecord* find(const Supi& supi) const;

  std::size_t subscriber_count() const noexcept { return records_.size(); }

  /// SQN increment step: SEQ advances by one with a 5-bit index field
  /// (TS 33.102 Annex C.1.1.3 array scheme).
  static constexpr std::uint64_t kSqnStep = 32;

 private:
  void register_routes();

  std::map<Supi, SubscriberRecord> records_;
};

}  // namespace shield5g::nf
