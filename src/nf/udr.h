// Unified Data Repository: the credential storage unit (paper §II-A).
//
// Stores subscriber credentials in a columnar SubscriberStore (SoA
// columns + open-addressed SUPI index — see nf/subscriber_store.h) and
// owns SQN management: each authentication vector request atomically
// increments the subscriber's SQN; a resynchronisation writes the
// UE-reported SQNms back.
#pragma once

#include "nf/subscriber_store.h"
#include "nf/types.h"
#include "nf/vnf.h"

namespace shield5g::nf {

class Udr : public Vnf {
 public:
  explicit Udr(net::Bus& bus, const std::string& name = "udr");

  /// Provisioning-plane insert/replace (not part of the SBI).
  void provision(const SubscriberRecord& record) { store_.provision(record); }

  /// Pre-sizes the store for a bulk provisioning run (the 1M-subscriber
  /// bench path: no rehashes, no column growth mid-provision).
  void reserve_subscribers(std::size_t n) { store_.reserve(n); }

  /// Direct read access for the orchestrator and tests (e.g. to seal
  /// the K table into the eUDM enclave at deployment time).
  const SubscriberStore& store() const noexcept { return store_; }

  std::size_t subscriber_count() const noexcept { return store_.size(); }

  /// SQN increment step: SEQ advances by one with a 5-bit index field
  /// (TS 33.102 Annex C.1.1.3 array scheme).
  static constexpr std::uint64_t kSqnStep = 32;

 private:
  void register_routes();

  SubscriberStore store_;
};

}  // namespace shield5g::nf
