// Authentication Server Function (paper §II-A, Fig. 5).
//
// Verifies the serving network's authorization, drives HE AV generation
// through the UDM, derives the SE AV (HXRES*) and K_SEAF — in external
// mode via the eAUSF P-AKA module — and confirms the UE's RES* during
// the second phase of 5G-AKA.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "nf/types.h"
#include "nf/udm.h"
#include "nf/vnf.h"

namespace shield5g::nf {

struct AusfConfig {
  std::string name = "ausf";
  std::string udm_service = "udm";
  std::string eausf_service = "eausf-aka";
  AkaDeployment deployment = AkaDeployment::kExternal;
  /// Serving networks authorized to request authentication.
  std::set<std::string> allowed_snns;
};

class Ausf : public Vnf {
 public:
  Ausf(net::Bus& bus, AusfConfig config);

  const AusfConfig& config() const noexcept { return config_; }
  void set_deployment(AkaDeployment mode) noexcept {
    config_.deployment = mode;
  }

  std::uint64_t contexts_created() const noexcept { return next_ctx_id_; }

 private:
  struct AuthContext {
    Supi supi;
    std::string snn;
    Bytes rand;
    Bytes xres_star;
    SecretBytes kseaf;  // anchor key: tainted until the SEAF hand-off
  };

  void register_routes();

  AusfConfig config_;
  std::map<std::string, AuthContext> contexts_;
  std::uint64_t next_ctx_id_ = 0;
};

}  // namespace shield5g::nf
