// Unified Data Management: SIDF (SUCI de-concealment) and HE AV
// generation (paper §II-A, Fig. 5).
//
// In `kMonolithic` mode the sensitive AKA functions run inside the VNF
// (legacy OAI layout); in `kExternal` mode they are offloaded to the
// eUDM P-AKA module over the bus, exactly as the paper's modified VNFs
// do during UE registration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/rng.h"
#include "crypto/milenage.h"
#include "crypto/x25519.h"
#include "json/json.h"
#include "nf/types.h"
#include "nf/vnf.h"

namespace shield5g::nf {

enum class AkaDeployment {
  kMonolithic,  // AKA functions inside the VNF
  kExternal,    // offloaded to the e*-AKA module (container or SGX)
};

struct UdmConfig {
  std::string name = "udm";
  std::string udr_service = "udr";
  /// eUDM P-AKA endpoints. More than one entry enables the horizontal
  /// scaling the paper's design supports ("network operators can scale
  /// the enclave worker nodes ... on demand", §V-B7); requests are
  /// distributed round-robin.
  std::vector<std::string> eudm_services = {"eudm-aka"};
  AkaDeployment deployment = AkaDeployment::kExternal;
  /// Home-network ECIES key pair for SIDF (Profile A).
  crypto::X25519KeyPair hn_key{};
  std::uint8_t hn_key_id = 1;
  /// Seed of the UDM's RAND generator. A dedicated source keeps the
  /// challenge sequence independent of transport-level randomness, so
  /// the same provisioning yields identical vectors across deployments.
  std::uint64_t rand_seed = 0xda7eb45eULL;
  /// Bound on the per-subscriber MILENAGE context cache. Large enough
  /// that every existing workload's working set fits (zero evictions,
  /// bit-identical to the old unbounded map); small enough that a
  /// million-subscriber serving shard cannot accrete one AES schedule
  /// per subscriber ever authenticated.
  std::size_t milenage_cache_capacity = 1024;
};

class Udm : public Vnf {
 public:
  Udm(net::Bus& bus, UdmConfig config);

  const UdmConfig& config() const noexcept { return config_; }
  void set_deployment(AkaDeployment mode) noexcept {
    config_.deployment = mode;
  }

  std::uint64_t av_generated_count() const noexcept { return av_count_; }
  std::uint64_t auth_events() const noexcept { return auth_events_; }

  /// Next eUDM replica in round-robin order.
  const std::string& next_eudm() noexcept {
    return config_.eudm_services[eudm_rr_++ % config_.eudm_services.size()];
  }

 private:
  void register_routes();

  /// Resolves a SUCI (or plain SUPI) from the request body; charges the
  /// de-concealment crypto to this VNF's environment.
  std::optional<Supi> resolve_identity(const json::Value& body);

  /// Cached per-subscriber MILENAGE context (monolithic deployment):
  /// the AES schedule for K is expanded once, then revalidated in
  /// constant time against the credentials the UDR returned. Bounded
  /// LRU (UdmConfig::milenage_cache_capacity); evictions land on the
  /// udm.milenage.evict counter.
  struct MilenageEntry {
    SecretBytes k;
    SecretBytes opc;
    crypto::Milenage ctx;
  };
  const crypto::Milenage& milenage_for(const std::string& supi,
                                       const SecretBytes& k,
                                       const SecretBytes& opc);

  UdmConfig config_;
  LruCache<std::string, MilenageEntry> milenage_cache_;
  Rng rand_rng_;
  std::uint64_t av_count_ = 0;
  std::uint64_t auth_events_ = 0;
  std::size_t eudm_rr_ = 0;
};

}  // namespace shield5g::nf
