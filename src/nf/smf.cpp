#include "nf/smf.h"

#include "nf/sbi.h"

namespace shield5g::nf {

Smf::Smf(net::Bus& bus, Upf& upf, const std::string& name)
    : Vnf(name, bus), upf_(upf) {
  register_routes();
}

void Smf::register_routes() {
  auto& router = server_.router();

  router.add(
      net::Method::kPost, "/nsmf-pdusession/v1/sm-contexts",
      [this](const net::RequestView& req, const net::PathParams&) {
        const auto body = parse_body(req.body);
        if (!body) return net::HttpResponse::error(400, "bad json");
        const auto supi = body->get_string("supi");
        const auto session_id = body->get_int("pduSessionId");
        const auto dnn = body->get_string("dnn");
        if (!supi || !session_id) {
          return net::HttpResponse::error(400, "missing sm-context fields");
        }
        const std::string key =
            *supi + "/" + std::to_string(*session_id);
        if (contexts_.count(key) != 0) {
          return net::HttpResponse::error(409, "duplicate PDU session");
        }
        const UpfSession session = upf_.n4_establish(
            *supi, static_cast<std::uint8_t>(*session_id),
            dnn ? *dnn : "internet");
        contexts_[key] = session.teid;
        ++created_;

        json::Object out;
        out["ueIp"] = session.ue_ip;
        out["teid"] = static_cast<std::int64_t>(session.teid);
        out["qfi"] = 9;
        return net::HttpResponse::json(201, json::Value(out).dump());
      });

  router.add(
      net::Method::kDelete, "/nsmf-pdusession/v1/sm-contexts/:supi/:id",
      [this](const net::RequestView&, const net::PathParams& params) {
        const std::string key = params.at("supi") + "/" + params.at("id");
        const auto it = contexts_.find(key);
        if (it == contexts_.end()) {
          return net::HttpResponse::error(404, "unknown sm-context");
        }
        upf_.n4_release(it->second);
        contexts_.erase(it);
        return net::HttpResponse::json(204, "");
      });
}

}  // namespace shield5g::nf
