// The 5G-AKA home-environment computations (TS 33.501 §6.1.3.2).
//
// This is the sensitive math the paper extracts into the P-AKA enclaves:
// MILENAGE f1/f2345, AUTN assembly, XRES*/K_AUSF derivation (eUDM),
// HXRES*/K_SEAF derivation (eAUSF) and K_AMF derivation (eAMF). The same
// functions back the monolithic in-VNF baseline, the container-isolated
// modules and the SGX-isolated modules, so all three deployments are
// bit-identical in their outputs.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/milenage.h"
#include "nf/types.h"

namespace shield5g::nf {

/// UDM-side: generates the HE AV for one (K, OPc, RAND, SQN, AMF) tuple.
/// K and OPc are the tainted long-term credentials.
HeAv generate_he_av(SecretView k, SecretView opc, ByteView rand,
                    ByteView sqn6, ByteView amf_field, const std::string& snn);

/// Same computation against an already-constructed MILENAGE context
/// (the hot path: the AES key schedule for K is expanded once per
/// subscriber, not once per authentication).
HeAv generate_he_av(const crypto::Milenage& milenage, ByteView rand,
                    ByteView sqn6, ByteView amf_field, const std::string& snn);

/// AUSF-side: HXRES* (paper's 8-byte form) and K_SEAF.
struct SeDerivation {
  Bytes hxres_star;    // kHxresStarBytes — protocol output
  SecretBytes kseaf;   // 32 — anchor key, tainted
};
SeDerivation derive_se(ByteView rand, ByteView xres_star, SecretView kausf,
                       const std::string& snn);

/// AMF-side: K_AMF from K_SEAF.
SecretBytes derive_kamf_for(SecretView kseaf, const std::string& supi);

/// Resynchronisation (TS 33.102 §6.3.5): verifies AUTS = (SQNms xor AK*)
/// || MAC-S against f1*/f5* and recovers SQNms. Returns nullopt when
/// MAC-S does not verify.
std::optional<Bytes> resync_verify(SecretView k, SecretView opc,
                                   ByteView rand, ByteView auts);
std::optional<Bytes> resync_verify(const crypto::Milenage& milenage,
                                   ByteView rand, ByteView auts);

/// UE-side helper shared with the USIM model: AUTS construction.
Bytes build_auts(SecretView k, SecretView opc, ByteView rand,
                 ByteView sqn_ms);
Bytes build_auts(const crypto::Milenage& milenage, ByteView rand,
                 ByteView sqn_ms);

}  // namespace shield5g::nf
