// The simulated SGX-capable host: EPC pool, enclave registry, platform
// secrets for sealing/attestation, and the timer-interrupt source that
// accrues AEX events on resident enclaves.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "sgx/cost_model.h"
#include "sgx/enclave.h"
#include "sgx/epc.h"
#include "sim/clock.h"

namespace shield5g::sgx {

class Machine {
 public:
  Machine(sim::VirtualClock& clock, CostModel costs = {},
          std::uint64_t seed = 0x56474d53ULL);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::VirtualClock& clock() noexcept { return clock_; }
  const CostModel& costs() const noexcept { return costs_; }
  EpcPool& epc() noexcept { return epc_; }
  Rng& rng() noexcept { return rng_; }

  /// Creates an enclave; ownership stays with the machine.
  Enclave& create_enclave(EnclaveConfig config);
  void destroy_enclave(Enclave& enclave);

  std::size_t enclave_count() const noexcept { return enclaves_.size(); }

  /// Platform-fused secrets (never leave the "CPU package": consumed
  /// only by the sealing/attestation modules).
  ByteView seal_fuse_key() const noexcept { return seal_fuse_key_; }
  ByteView attestation_key() const noexcept { return attestation_key_; }

 private:
  void on_clock_advance(sim::Nanos prev, sim::Nanos now);

  sim::VirtualClock& clock_;
  CostModel costs_;
  EpcPool epc_;
  Rng rng_;
  Bytes seal_fuse_key_;
  Bytes attestation_key_;
  std::vector<std::unique_ptr<Enclave>> enclaves_;
  std::size_t observer_id_ = 0;
  sim::Nanos last_tick_ = 0;
};

}  // namespace shield5g::sgx
