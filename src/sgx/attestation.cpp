#include "sgx/attestation.h"

#include <stdexcept>

#include "crypto/hmac_sha256.h"
#include "sgx/machine.h"

namespace shield5g::sgx {

namespace {
Bytes quote_signing_input(ByteView measurement, ByteView report_data) {
  return concat({to_bytes("sgx-quote-v1"), measurement, report_data});
}
}  // namespace

Bytes Quote::serialize() const {
  Bytes out;
  auto append = [&out](ByteView part) {
    const Bytes len = be_bytes(part.size(), 4);
    out.insert(out.end(), len.begin(), len.end());
    out.insert(out.end(), part.begin(), part.end());
  };
  append(measurement);
  append(report_data);
  append(signature);
  return out;
}

std::optional<Quote> Quote::deserialize(ByteView data) {
  Quote quote;
  std::size_t pos = 0;
  auto read = [&](Bytes& field) -> bool {
    if (pos + 4 > data.size()) return false;
    const std::uint64_t len = be_value(data.subspan(pos, 4));
    pos += 4;
    if (pos + len > data.size()) return false;
    field = slice_bytes(data, pos, len);
    pos += len;
    return true;
  };
  if (!read(quote.measurement) || !read(quote.report_data) ||
      !read(quote.signature) || pos != data.size()) {
    return std::nullopt;
  }
  return quote;
}

Quote generate_quote(Enclave& enclave, ByteView report_data) {
  if (report_data.size() > 64) {
    throw std::invalid_argument("generate_quote: report data > 64 bytes");
  }
  Quote quote;
  quote.measurement = enclave.measurement();
  quote.report_data = Bytes(report_data.begin(), report_data.end());
  quote.signature = crypto::hmac_sha256(
      enclave.machine().attestation_key(),
      quote_signing_input(quote.measurement, quote.report_data));
  return quote;
}

bool AttestationVerifier::verify_signature(const Quote& quote) const {
  const Bytes expected = crypto::hmac_sha256(
      attestation_key_,
      quote_signing_input(quote.measurement, quote.report_data));
  return ct_equal(expected, quote.signature);
}

bool AttestationVerifier::verify(const Quote& quote,
                                 ByteView expected_measurement) const {
  return verify_signature(quote) &&
         ct_equal(quote.measurement, expected_measurement);
}

}  // namespace shield5g::sgx
