// Enclave lifecycle and transition accounting.
//
// Models the SGX user-visible machine: ECREATE/EADD/EEXTEND/EINIT build
// an enclave with a SHA-256 measurement (MRENCLAVE analogue) while
// charging per-page costs; at run time ECALLs/OCALLs charge EENTER/EEXIT
// transition costs and bump the counters the paper reports in Table III;
// the machine's simulated timer interrupt accrues AEX events against
// resident enclaves independently of workload.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "sgx/cost_model.h"
#include "sgx/epc.h"
#include "sim/clock.h"

namespace shield5g::sgx {

class Machine;

struct EnclaveConfig {
  std::string name;
  std::uint64_t size_bytes = 512ULL << 20;  // EPC commitment (paper: 512MB)
  std::uint32_t max_threads = 4;            // paper: sgx.max_threads=4
  bool debug = false;
};

struct TransitionCounters {
  std::uint64_t eenter = 0;
  std::uint64_t eexit = 0;
  std::uint64_t eresume = 0;
  std::uint64_t aex = 0;
  std::uint64_t ecalls = 0;
  std::uint64_t ocalls = 0;

  TransitionCounters operator-(const TransitionCounters& rhs) const noexcept {
    return {eenter - rhs.eenter,   eexit - rhs.eexit, eresume - rhs.eresume,
            aex - rhs.aex,         ecalls - rhs.ecalls,
            ocalls - rhs.ocalls};
  }
};

enum class EnclaveState { kCreated, kInitialized, kDestroyed };

class Enclave {
 public:
  Enclave(Machine& machine, EnclaveConfig config);
  ~Enclave();

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  const EnclaveConfig& config() const noexcept { return config_; }
  EnclaveState state() const noexcept { return state_; }
  const TransitionCounters& counters() const noexcept { return counters_; }
  const EpcRegion& region() const noexcept { return *region_; }
  Machine& machine() noexcept { return machine_; }

  // ---- Build phase (before init) -------------------------------------
  /// EADD+EEXTEND: charges per-page load cost and extends the enclave
  /// measurement with the page content digest.
  void add_pages(std::uint64_t bytes, ByteView content_digest);

  /// Folds arbitrary configuration data into the measurement (the
  /// manifest, signer identity, ...).
  void extend_measurement(ByteView data);

  /// EINIT: freezes the measurement; the enclave becomes runnable.
  void init();

  /// Final MRENCLAVE value. Only valid after init().
  Bytes measurement() const;

  // ---- Run phase ------------------------------------------------------
  /// Synchronous ECALL bracket (EENTER ... EEXIT).
  void ecall_begin();
  void ecall_end();

  /// A long-lived ECALL that never returns while the service lives
  /// (Gramine enters once per process and once per thread).
  void ecall_enter_resident();

  /// OCALL round trip: EEXIT, host work of `host_ns`, EENTER.
  void ocall(sim::Nanos host_ns);

  /// In-enclave computation: `ns` of plain compute time, scaled by the
  /// memory-encryption factor.
  void execute(sim::Nanos ns);

  /// Heap allocation churn of `pages` EPC pages during a request.
  void alloc_pages(std::uint64_t pages);

  /// First-touch demand faults (R_I spike when preheat is off or cold
  /// code paths are walked by the first request).
  void demand_fault(std::uint64_t pages);

  /// EPC<->DRAM paging of `pages` pages (oversized-EPC model).
  void page_swap(std::uint64_t pages);

  // Called by the Machine's timer-interrupt observer.
  void accrue_aex(std::uint64_t events) noexcept;

 private:
  void require_state(EnclaveState s, const char* op) const;

  Machine& machine_;
  EnclaveConfig config_;
  EnclaveState state_ = EnclaveState::kCreated;
  std::unique_ptr<EpcRegion> region_;
  crypto::Sha256 measurement_hash_;
  Bytes measurement_;
  TransitionCounters counters_;
};

}  // namespace shield5g::sgx
