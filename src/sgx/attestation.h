// Remote attestation (paper §VI, KIs 11/12/13).
//
// Models the quote flow: an initialized enclave produces a Quote binding
// its measurement to caller-chosen report data; a verifier that trusts
// the platform's attestation key (standing in for Intel's EPID/DCAP
// infrastructure) checks the quote and the expected measurement. The
// slice orchestrator uses this to verify P-AKA module integrity before
// admitting them into the AKA service chain.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"
#include "sgx/enclave.h"

namespace shield5g::sgx {

struct Quote {
  Bytes measurement;  // MRENCLAVE of the quoted enclave
  Bytes report_data;  // 64 bytes chosen by the enclave (e.g. TLS key hash)
  Bytes signature;    // platform attestation signature

  Bytes serialize() const;
  static std::optional<Quote> deserialize(ByteView data);
};

/// EREPORT + quoting-enclave analogue: produces a signed quote.
Quote generate_quote(Enclave& enclave, ByteView report_data);

/// The verifying side: stands in for the attestation service that knows
/// the platform's provisioned key material.
class AttestationVerifier {
 public:
  explicit AttestationVerifier(Bytes attestation_key)
      : attestation_key_(std::move(attestation_key)) {}

  /// Signature check only.
  bool verify_signature(const Quote& quote) const;

  /// Full policy check: valid signature AND the expected measurement.
  bool verify(const Quote& quote, ByteView expected_measurement) const;

 private:
  Bytes attestation_key_;
};

}  // namespace shield5g::sgx
