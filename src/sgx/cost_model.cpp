#include "sgx/cost_model.h"

// All members are defined inline in the header; this translation unit
// exists so the library has a stable archive member for the module and a
// home for future out-of-line helpers.

namespace shield5g::sgx {}  // namespace shield5g::sgx
