#include "sgx/enclave.h"

#include <stdexcept>

#include "sgx/machine.h"

namespace shield5g::sgx {

Enclave::Enclave(Machine& machine, EnclaveConfig config)
    : machine_(machine), config_(std::move(config)) {
  region_ = std::make_unique<EpcRegion>(machine_.epc(), config_.size_bytes);
  // ECREATE: fold the SECS-like attributes into the measurement.
  measurement_hash_.update(to_bytes(config_.name));
  measurement_hash_.update(be_bytes(config_.size_bytes, 8));
  measurement_hash_.update(be_bytes(config_.max_threads, 4));
}

Enclave::~Enclave() = default;

void Enclave::require_state(EnclaveState s, const char* op) const {
  if (state_ != s) {
    throw std::logic_error(std::string("Enclave ") + config_.name + ": " +
                           op + " in wrong state");
  }
}

void Enclave::add_pages(std::uint64_t bytes, ByteView content_digest) {
  require_state(EnclaveState::kCreated, "add_pages");
  const auto& costs = machine_.costs();
  const std::uint64_t pages = machine_.epc().pages_for(bytes);
  machine_.clock().advance(pages *
                           (costs.eadd_per_page + costs.eextend_per_page));
  region_->fault_in(pages);
  measurement_hash_.update(content_digest);
  measurement_hash_.update(be_bytes(bytes, 8));
}

void Enclave::extend_measurement(ByteView data) {
  require_state(EnclaveState::kCreated, "extend_measurement");
  measurement_hash_.update(data);
}

void Enclave::init() {
  require_state(EnclaveState::kCreated, "init");
  machine_.clock().advance(machine_.costs().einit_fixed);
  const auto digest = measurement_hash_.finalize();
  measurement_ = Bytes(digest.begin(), digest.end());
  state_ = EnclaveState::kInitialized;
}

Bytes Enclave::measurement() const {
  if (state_ != EnclaveState::kInitialized) {
    throw std::logic_error("Enclave: measurement before init");
  }
  return measurement_;
}

void Enclave::ecall_begin() {
  require_state(EnclaveState::kInitialized, "ecall_begin");
  ++counters_.ecalls;
  ++counters_.eenter;
  machine_.clock().advance(machine_.costs().eenter_ns());
}

void Enclave::ecall_end() {
  require_state(EnclaveState::kInitialized, "ecall_end");
  ++counters_.eexit;
  machine_.clock().advance(machine_.costs().eexit_ns());
}

void Enclave::ecall_enter_resident() {
  require_state(EnclaveState::kInitialized, "ecall_enter_resident");
  ++counters_.ecalls;
  ++counters_.eenter;
  machine_.clock().advance(machine_.costs().eenter_ns());
}

void Enclave::ocall(sim::Nanos host_ns) {
  require_state(EnclaveState::kInitialized, "ocall");
  ++counters_.ocalls;
  ++counters_.eexit;
  ++counters_.eenter;
  machine_.clock().advance(machine_.costs().eexit_ns() + host_ns +
                           machine_.costs().eenter_ns());
}

void Enclave::execute(sim::Nanos ns) {
  require_state(EnclaveState::kInitialized, "execute");
  const double factor = machine_.costs().enclave_compute_factor;
  machine_.clock().advance(
      static_cast<sim::Nanos>(static_cast<double>(ns) * factor));
}

void Enclave::alloc_pages(std::uint64_t pages) {
  require_state(EnclaveState::kInitialized, "alloc_pages");
  machine_.clock().advance(pages * machine_.costs().enclave_alloc_per_page);
}

void Enclave::demand_fault(std::uint64_t pages) {
  require_state(EnclaveState::kInitialized, "demand_fault");
  // Cold first-touch cost is paid per page walked even when the page is
  // already EPC-resident (preheat covers the heap, not the TLB/paging
  // structures and lazy-bound code paths the first request exercises).
  region_->fault_in(pages);
  machine_.clock().advance(pages * machine_.costs().demand_fault_per_page);
  counters_.aex += pages;  // each #PF exits the enclave asynchronously
  counters_.eresume += pages;
}

void Enclave::page_swap(std::uint64_t pages) {
  require_state(EnclaveState::kInitialized, "page_swap");
  machine_.clock().advance(pages * machine_.costs().epc_swap_per_page);
  counters_.aex += pages;
  counters_.eresume += pages;
}

void Enclave::accrue_aex(std::uint64_t events) noexcept {
  counters_.aex += events;
  counters_.eresume += events;
}

}  // namespace shield5g::sgx
