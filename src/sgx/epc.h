// Enclave Page Cache model.
//
// SGX reserves Processor Reserved Memory at boot and exposes it to
// enclaves as the EPC. This model tracks, per machine, how many EPC
// pages are committed to which enclave, and per enclave which pages are
// resident vs swapped, so the load-time (EADD/EEXTEND), preheat, demand
// fault and paging costs of the cost model have real state behind them.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace shield5g::sgx {

/// Machine-wide EPC pool (bytes granularity, page accounting).
class EpcPool {
 public:
  EpcPool(std::uint64_t total_bytes, std::uint64_t page_size)
      : total_bytes_(total_bytes), page_size_(page_size) {}

  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  std::uint64_t used_bytes() const noexcept { return used_bytes_; }
  std::uint64_t free_bytes() const noexcept { return total_bytes_ - used_bytes_; }
  std::uint64_t page_size() const noexcept { return page_size_; }

  /// Reserves `bytes` (rounded up to pages) for an enclave.
  /// Throws std::runtime_error when the pool is exhausted.
  void reserve(std::uint64_t bytes);
  void release(std::uint64_t bytes) noexcept;

  std::uint64_t pages_for(std::uint64_t bytes) const noexcept {
    return (bytes + page_size_ - 1) / page_size_;
  }

 private:
  std::uint64_t total_bytes_;
  std::uint64_t page_size_;
  std::uint64_t used_bytes_ = 0;
};

/// Per-enclave page-residency tracking.
class EpcRegion {
 public:
  EpcRegion(EpcPool& pool, std::uint64_t bytes);
  ~EpcRegion();

  EpcRegion(const EpcRegion&) = delete;
  EpcRegion& operator=(const EpcRegion&) = delete;

  std::uint64_t size_bytes() const noexcept { return bytes_; }
  std::uint64_t total_pages() const noexcept { return pages_; }
  std::uint64_t resident_pages() const noexcept { return resident_pages_; }
  std::uint64_t faulted_pages() const noexcept { return faulted_total_; }

  /// Marks `n` pages resident (preheat or demand fault); returns how
  /// many were actually newly faulted (the rest were already resident).
  std::uint64_t fault_in(std::uint64_t n) noexcept;

  /// Evicts `n` pages (EWB), used by the paging model.
  std::uint64_t evict(std::uint64_t n) noexcept;

 private:
  EpcPool& pool_;
  std::uint64_t bytes_;
  std::uint64_t pages_;
  std::uint64_t resident_pages_ = 0;
  std::uint64_t faulted_total_ = 0;
};

}  // namespace shield5g::sgx
