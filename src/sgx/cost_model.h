// Calibrated cost model for the simulated SGX platform.
//
// Every constant that turns a modeled hardware event into virtual time
// lives here, with its provenance. Two kinds of constants exist:
//
//  * STRUCTURAL constants taken from the paper's citations and public
//    SGX literature (transition cycle counts, clock frequency, page
//    granularity). These drive the *mechanics*: how many EENTER/EEXIT/
//    AEX events occur and what each costs.
//  * CALIBRATION constants chosen so the simulated testbed lands in the
//    paper's measured ranges (per-page load costs, software-crypto
//    throughput, per-request enclave allocation pressure). These are
//    documented as calibrated in EXPERIMENTS.md; the experiment *shapes*
//    (who wins, crossover behaviour, workload independence of AEX) do
//    not depend on their exact values.
#pragma once

#include <cstdint>

#include "crypto/cost.h"
#include "sim/clock.h"

namespace shield5g::sgx {

struct CostModel {
  // ------------------------------------------------------------------
  // Structural: platform parameters (paper §V-A: Xeon Silver 4314).
  // ------------------------------------------------------------------
  double cpu_ghz = 2.40;

  /// Enclave transitions. The paper cites 10,000-18,000 cycles per
  /// context switch [19]; we split a mid-range round trip between the
  /// entry and exit instructions.
  std::uint64_t eenter_cycles = 6'500;
  std::uint64_t eexit_cycles = 6'500;
  std::uint64_t eresume_cycles = 6'500;
  std::uint64_t aex_cycles = 7'000;

  /// Simulated OS timer interrupt hitting resident enclave threads.
  /// Drives the workload-independent AEX counts of Table III.
  sim::Nanos aex_timer_period = 1 * sim::kMillisecond;

  // ------------------------------------------------------------------
  // Enclave build & load (Fig. 7). EADD copies and EEXTEND measures one
  // 4 KiB page in 256-byte chunks; Gramine+GSC also hash every trusted
  // file on first open. Calibrated so a 512 MB preheated GSC image
  // loads in ~58 s, matching Fig. 7.
  // ------------------------------------------------------------------
  std::uint64_t page_size = 4096;
  sim::Nanos eadd_per_page = 28 * sim::kMicrosecond;
  sim::Nanos eextend_per_page = 112 * sim::kMicrosecond;
  sim::Nanos einit_fixed = 40 * sim::kMillisecond;
  /// Pre-faulting one heap page during preheat (EAUG + EACCEPT path).
  sim::Nanos preheat_fault_per_page = 300 * sim::kMicrosecond;
  /// Demand-faulting one page at first touch (when preheat is off or
  /// for code paths not yet walked: the R_I spike of Fig. 10b).
  sim::Nanos demand_fault_per_page = 2'500;
  /// Trusted-file hashing throughput inside the enclave (bytes/ns).
  double file_hash_bytes_per_ns = 0.45;

  // ------------------------------------------------------------------
  // EPC behaviour (Fig. 8). Oversized EPC increases paging activity
  // between EPC and main memory, adding a small mean penalty and extra
  // variance (the paper's 8 GB interquartile widening).
  // ------------------------------------------------------------------
  std::uint64_t epc_total_bytes = 16ULL << 30;  // combined, two sockets
  std::uint64_t epc_per_socket_bytes = 8ULL << 30;
  sim::Nanos epc_swap_per_page = 12 * sim::kMicrosecond;
  /// Fraction of request pages that page-swap per GiB of configured
  /// EPC above the working set (pure calibration; tiny).
  double paging_rate_per_gib = 0.035;

  // ------------------------------------------------------------------
  // In-enclave execution (Fig. 9a). Memory-encryption & EPC-miss
  // slowdown applied to modeled compute time, plus a per-allocated-page
  // cost for heap churn in EPC (drives the per-module L_F factors).
  // ------------------------------------------------------------------
  double enclave_compute_factor = 1.08;
  sim::Nanos enclave_alloc_per_page = 2'200;

  // ------------------------------------------------------------------
  // Software crypto primitive costs on the host (shared definition with
  // the network substrate; see crypto/cost.h).
  // ------------------------------------------------------------------
  crypto::PrimitiveCosts primitives;

  // ------------------------------------------------------------------
  // Derived helpers.
  // ------------------------------------------------------------------
  sim::Nanos cycles_to_ns(std::uint64_t cycles) const noexcept {
    return static_cast<sim::Nanos>(static_cast<double>(cycles) / cpu_ghz);
  }
  sim::Nanos eenter_ns() const noexcept { return cycles_to_ns(eenter_cycles); }
  sim::Nanos eexit_ns() const noexcept { return cycles_to_ns(eexit_cycles); }
  sim::Nanos eresume_ns() const noexcept {
    return cycles_to_ns(eresume_cycles);
  }
  sim::Nanos aex_ns() const noexcept { return cycles_to_ns(aex_cycles); }

  /// Virtual time for the crypto work recorded by the op counters.
  sim::Nanos crypto_ns(const crypto::OpCounts& delta) const noexcept {
    return primitives.ns_for(delta);
  }
};

}  // namespace shield5g::sgx
