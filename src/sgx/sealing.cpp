#include "sgx/sealing.h"

#include "crypto/aes128.h"
#include "crypto/hmac_sha256.h"
#include "sgx/machine.h"

namespace shield5g::sgx {

namespace {

struct SealKeys {
  Bytes enc_key;  // 16 bytes
  Bytes mac_key;  // 32 bytes
};

// EGETKEY analogue: KDF(fuse key, "seal" || MRENCLAVE).
SealKeys derive_seal_keys(Machine& machine, ByteView measurement) {
  const Bytes okm = crypto::hmac_sha256(
      machine.seal_fuse_key(), concat({to_bytes("seal-key"), measurement}));
  const Bytes okm2 = crypto::hmac_sha256(
      machine.seal_fuse_key(), concat({to_bytes("seal-mac"), measurement}));
  return SealKeys{take(okm, 16), okm2};
}

}  // namespace

Bytes SealedBlob::serialize() const {
  Bytes out;
  auto append = [&out](ByteView part) {
    const Bytes len = be_bytes(part.size(), 4);
    out.insert(out.end(), len.begin(), len.end());
    out.insert(out.end(), part.begin(), part.end());
  };
  append(measurement);
  append(iv);
  append(ciphertext);
  append(mac);
  return out;
}

std::optional<SealedBlob> SealedBlob::deserialize(ByteView data) {
  SealedBlob blob;
  std::size_t pos = 0;
  auto read = [&](Bytes& field) -> bool {
    if (pos + 4 > data.size()) return false;
    const std::uint64_t len = be_value(data.subspan(pos, 4));
    pos += 4;
    if (pos + len > data.size()) return false;
    field = slice_bytes(data, pos, len);
    pos += len;
    return true;
  };
  if (!read(blob.measurement) || !read(blob.iv) || !read(blob.ciphertext) ||
      !read(blob.mac) || pos != data.size()) {
    return std::nullopt;
  }
  return blob;
}

SealedBlob seal(Enclave& enclave, ByteView plaintext, ByteView iv_entropy) {
  if (iv_entropy.size() != 16) {
    throw std::invalid_argument("seal: iv_entropy must be 16 bytes");
  }
  const Bytes measurement = enclave.measurement();
  const SealKeys keys = derive_seal_keys(enclave.machine(), measurement);

  SealedBlob blob;
  blob.measurement = measurement;
  blob.iv = Bytes(iv_entropy.begin(), iv_entropy.end());
  blob.ciphertext = crypto::aes128_ctr(keys.enc_key, blob.iv, plaintext);
  blob.mac = crypto::hmac_sha256_trunc(
      keys.mac_key, concat({ByteView(blob.iv), ByteView(blob.ciphertext)}),
      16);
  return blob;
}

std::optional<Bytes> unseal(Enclave& enclave, const SealedBlob& blob) {
  const Bytes measurement = enclave.measurement();
  if (!ct_equal(measurement, blob.measurement)) return std::nullopt;

  const SealKeys keys = derive_seal_keys(enclave.machine(), measurement);
  const Bytes expected_mac = crypto::hmac_sha256_trunc(
      keys.mac_key, concat({ByteView(blob.iv), ByteView(blob.ciphertext)}),
      16);
  if (!ct_equal(expected_mac, blob.mac)) return std::nullopt;
  return crypto::aes128_ctr(keys.enc_key, blob.iv, blob.ciphertext);
}

}  // namespace shield5g::sgx
