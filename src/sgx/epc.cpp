#include "sgx/epc.h"

#include <algorithm>

namespace shield5g::sgx {

void EpcPool::reserve(std::uint64_t bytes) {
  const std::uint64_t rounded = pages_for(bytes) * page_size_;
  if (rounded > free_bytes()) {
    throw std::runtime_error(
        "EpcPool: out of EPC (" + std::to_string(rounded) + " requested, " +
        std::to_string(free_bytes()) + " free)");
  }
  used_bytes_ += rounded;
}

void EpcPool::release(std::uint64_t bytes) noexcept {
  const std::uint64_t rounded = pages_for(bytes) * page_size_;
  used_bytes_ -= std::min(used_bytes_, rounded);
}

EpcRegion::EpcRegion(EpcPool& pool, std::uint64_t bytes)
    : pool_(pool), bytes_(bytes), pages_(pool.pages_for(bytes)) {
  pool_.reserve(bytes);
}

EpcRegion::~EpcRegion() { pool_.release(bytes_); }

std::uint64_t EpcRegion::fault_in(std::uint64_t n) noexcept {
  const std::uint64_t newly =
      std::min(n, pages_ - std::min(pages_, resident_pages_));
  resident_pages_ += newly;
  faulted_total_ += newly;
  return newly;
}

std::uint64_t EpcRegion::evict(std::uint64_t n) noexcept {
  const std::uint64_t evicted = std::min(n, resident_pages_);
  resident_pages_ -= evicted;
  return evicted;
}

}  // namespace shield5g::sgx
