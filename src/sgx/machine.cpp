#include "sgx/machine.h"

#include <algorithm>
#include <stdexcept>

namespace shield5g::sgx {

Machine::Machine(sim::VirtualClock& clock, CostModel costs, std::uint64_t seed)
    : clock_(clock),
      costs_(costs),
      epc_(costs.epc_total_bytes, costs.page_size),
      rng_(seed) {
  seal_fuse_key_ = rng_.bytes(32);
  attestation_key_ = rng_.bytes(32);
  observer_id_ = clock_.add_observer(
      [this](sim::Nanos prev, sim::Nanos now) { on_clock_advance(prev, now); });
  last_tick_ = clock_.now();
}

Machine::~Machine() { clock_.remove_observer(observer_id_); }

Enclave& Machine::create_enclave(EnclaveConfig config) {
  enclaves_.push_back(std::make_unique<Enclave>(*this, std::move(config)));
  return *enclaves_.back();
}

void Machine::destroy_enclave(Enclave& enclave) {
  const auto it = std::find_if(
      enclaves_.begin(), enclaves_.end(),
      [&enclave](const auto& e) { return e.get() == &enclave; });
  if (it == enclaves_.end()) {
    throw std::logic_error("Machine::destroy_enclave: unknown enclave");
  }
  enclaves_.erase(it);
}

void Machine::on_clock_advance(sim::Nanos /*prev*/, sim::Nanos now) {
  // The simulated OS timer interrupts resident enclave threads on a
  // fixed period; each interrupt is an AEX + ERESUME pair. This is why
  // Table III's AEX counts track enclave *lifetime*, not workload.
  const sim::Nanos period = costs_.aex_timer_period;
  if (now < last_tick_ + period) return;
  const std::uint64_t events = (now - last_tick_) / period;
  last_tick_ += events * period;
  for (const auto& e : enclaves_) {
    if (e->state() == EnclaveState::kInitialized) {
      e->accrue_aex(events);
    }
  }
}

}  // namespace shield5g::sgx
