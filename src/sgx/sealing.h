// Secret sealing (paper §VI, KI 27).
//
// Models SGX's EGETKEY-based sealing: a seal key derived from the
// platform fuse key and the enclave measurement (MRENCLAVE policy)
// encrypts and authenticates a blob. Only an enclave with the same
// measurement on the same machine can unseal it. The paper uses this
// property to argue that NF container images need not carry plaintext
// credentials — the eUDM P-AKA module in this repo receives its
// subscriber key table exactly this way.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "sgx/enclave.h"

namespace shield5g::sgx {

struct SealedBlob {
  Bytes measurement;  // sealing policy: MRENCLAVE
  Bytes iv;           // 16 bytes
  Bytes ciphertext;
  Bytes mac;          // 16 bytes of HMAC-SHA-256

  Bytes serialize() const;
  static std::optional<SealedBlob> deserialize(ByteView data);
};

/// Seals `plaintext` to the calling enclave's identity. `iv_entropy`
/// supplies 16 IV bytes (the caller's RNG keeps this deterministic).
SealedBlob seal(Enclave& enclave, ByteView plaintext, ByteView iv_entropy);

/// Unseals; returns nullopt if the enclave measurement does not match
/// the sealing policy or the MAC fails (tamper / wrong platform).
std::optional<Bytes> unseal(Enclave& enclave, const SealedBlob& blob);

}  // namespace shield5g::sgx
