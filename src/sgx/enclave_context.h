// Declassification context: evidence of *where* secret material is
// being exposed (paper §IV / Table V).
//
// Every `SecretBytes::declassify` call names the deployment that is
// about to see plaintext key material. A context is either
// container-backed (plain Docker — the paper's non-SGX baseline, whose
// exposed keys are exactly the Table V leak surface) or enclave-backed
// (a Gramine-SGX P-AKA module). Unsealing-grade declassification —
// re-exposing a long-term subscriber key K after it was provisioned
// sealed (KI 27) — is only legal against an enclave-backed context; the
// gate in common/secret.cpp enforces that and keeps audit counters.
//
// This header is intentionally self-contained (no other sgx/ includes)
// so the bottom-layer secret-taint code in src/common/ can reason about
// a context without linking the SGX machine model.
#pragma once

#include <string>
#include <utility>

namespace shield5g::sgx {

class Enclave;

class EnclaveContext {
 public:
  /// Container (or monolithic in-VNF) deployment: nothing shields the
  /// exposed bytes. Host-grade declassification only.
  static EnclaveContext container(std::string module) {
    return EnclaveContext(std::move(module), nullptr);
  }

  /// Enclave-backed deployment. `enclave` must outlive the context; it
  /// is the module's booted enclave instance.
  static EnclaveContext enclave_backed(std::string module,
                                       const Enclave* enclave) {
    return EnclaveContext(std::move(module), enclave);
  }

  bool enclave_backed() const noexcept { return enclave_ != nullptr; }
  const std::string& module() const noexcept { return module_; }
  const Enclave* backing() const noexcept { return enclave_; }

 private:
  EnclaveContext(std::string module, const Enclave* enclave)
      : module_(std::move(module)), enclave_(enclave) {}

  std::string module_;
  const Enclave* enclave_ = nullptr;
};

}  // namespace shield5g::sgx
