#include "paka/aka_udm.h"

#include "common/log.h"
#include "common/stats.h"
#include "nf/aka_core.h"
#include "nf/sbi.h"

namespace shield5g::paka {

EudmAkaService::EudmAkaService(sgx::Machine& machine, net::Bus& bus,
                               PakaOptions options, const std::string& name)
    : PakaService(name, machine, bus, options),
      milenage_cache_(options.milenage_cache_capacity) {}

void EudmAkaService::provision_key(const nf::Supi& supi, SecretBytes k) {
  keys_[supi] = std::move(k);
  milenage_cache_.erase(supi);
}

const crypto::Milenage& EudmAkaService::milenage_for(const nf::Supi& supi,
                                                     const SecretBytes& k,
                                                     const SecretBytes& opc) {
  MilenageEntry* cached = milenage_cache_.find(supi);
  // ct-audited(Secret operator== is ct_equal-backed; branch reveals only whether the cached Milenage context matches)
  if (cached != nullptr && cached->opc == opc) {
    return cached->ctx;
  }
  const std::uint64_t before = milenage_cache_.evictions();
  MilenageEntry& entry = milenage_cache_.insert(
      supi, MilenageEntry{opc, crypto::Milenage(k, opc)});
  if (milenage_cache_.evictions() != before) {
    counter_add("eudm.milenage.evict", milenage_cache_.evictions() - before);
  }
  return entry.ctx;
}

Bytes EudmAkaService::serialize_key_table(
    const std::map<nf::Supi, SecretBytes>& keys,
    const sgx::EnclaveContext* ctx) {
  Bytes out;
  const Bytes count = be_bytes(keys.size(), 4);
  out.insert(out.end(), count.begin(), count.end());
  for (const auto& [supi, k] : keys) {
    const Bytes len = be_bytes(supi.value.size(), 2);
    out.insert(out.end(), len.begin(), len.end());
    const Bytes id = to_bytes(supi.value);
    out.insert(out.end(), id.begin(), id.end());
    const Bytes raw = k.declassify(DeclassifyReason::kProvisioning, ctx);
    out.insert(out.end(), raw.begin(), raw.end());
  }
  return out;
}

bool EudmAkaService::provision_sealed(const sgx::SealedBlob& blob) {
  if (runtime() == nullptr || !runtime()->booted()) return false;
  auto plain = sgx::unseal(runtime()->enclave(), blob);
  if (!plain) {
    S5G_LOG(LogLevel::kWarn, "eudm-aka") << "sealed key table rejected";
    return false;
  }
  // The unsealed table is long-term key material: re-exposing it for
  // parsing is enclave-grade declassification (KI 27) and would throw
  // against anything but this module's enclave-backed context.
  const SecretBytes table(std::move(*plain));
  const Bytes raw =
      table.declassify(DeclassifyReason::kUnseal, secret_ctx());
  // Deserialize: [count u32] { [len u16][supi][16-byte K] }*
  const ByteView data(raw);
  if (data.size() < 4) return false;
  const std::uint64_t count = be_value(data.subspan(0, 4));
  std::size_t pos = 4;
  std::map<nf::Supi, SecretBytes> parsed;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (pos + 2 > data.size()) return false;
    const std::uint64_t len = be_value(data.subspan(pos, 2));
    pos += 2;
    if (pos + len + 16 > data.size()) return false;
    const std::string supi = to_string(data.subspan(pos, len));
    pos += len;
    parsed[nf::Supi{supi}] = SecretBytes(slice_bytes(data, pos, 16));
    pos += 16;
  }
  if (pos != data.size()) return false;
  keys_ = std::move(parsed);
  milenage_cache_.clear();
  return true;
}

void EudmAkaService::register_routes() {
  auto& router = server().router();

  // f1 + f2345 + K_AUSF + AUTN (Table I row "UDM").
  router.add(
      net::Method::kPost, "/paka/v1/generate-av",
      [this](const net::RequestView& req, const net::PathParams&) {
        const auto body = nf::parse_body(req.body);
        if (!body) return net::HttpResponse::error(400, "bad json");
        const auto supi = body->get_string("supi");
        const auto opc = nf::secret_hex_bytes(*body, "opc");
        const auto rand = nf::hex_bytes(*body, "rand");
        const auto sqn = nf::hex_bytes(*body, "sqn");
        const auto amf_id = nf::hex_bytes(*body, "amfId");
        const auto snn = body->get_string("snn");
        if (!supi || !opc || opc->size() != 16 || !rand ||
            rand->size() != 16 || !sqn || sqn->size() != 6 || !amf_id ||
            amf_id->size() != 2 || !snn) {
          return net::HttpResponse::error(400, "bad AV parameters");
        }
        const auto key = keys_.find(nf::Supi{*supi});
        if (key == keys_.end()) {
          return net::HttpResponse::error(404, "no key material for SUPI");
        }
        const nf::HeAv av = nf::generate_he_av(
            milenage_for(key->first, key->second, *opc), *rand, *sqn,
            *amf_id, *snn);
        json::Object out;
        out["rand"] = nf::hex_field(av.rand);
        out["autn"] = nf::hex_field(av.autn);
        out["xresStar"] = nf::hex_field(av.xres_star);
        // K_AUSF leaves the module for the AUSF: audited transport
        // declassification, counted as shielded under SGX isolation.
        out["kausf"] = nf::secret_hex_field(
            av.kausf, DeclassifyReason::kTransport, secret_ctx());
        return net::HttpResponse::json(200, json::Value(out).dump());
      });

  // f1* / f5* resynchronisation verification.
  router.add(
      net::Method::kPost, "/paka/v1/resync",
      [this](const net::RequestView& req, const net::PathParams&) {
        const auto body = nf::parse_body(req.body);
        if (!body) return net::HttpResponse::error(400, "bad json");
        const auto supi = body->get_string("supi");
        const auto opc = nf::secret_hex_bytes(*body, "opc");
        const auto rand = nf::hex_bytes(*body, "rand");
        const auto auts = nf::hex_bytes(*body, "auts");
        if (!supi || !opc || !rand || !auts) {
          return net::HttpResponse::error(400, "bad resync parameters");
        }
        const auto key = keys_.find(nf::Supi{*supi});
        if (key == keys_.end()) {
          return net::HttpResponse::error(404, "no key material for SUPI");
        }
        const auto sqn_ms = nf::resync_verify(
            milenage_for(key->first, key->second, *opc), *rand, *auts);
        if (!sqn_ms) {
          return net::HttpResponse::error(403, "MAC-S verification failed");
        }
        json::Object out;
        out["sqnMs"] = nf::hex_field(*sqn_ms);
        return net::HttpResponse::json(200, json::Value(out).dump());
      });

  router.add(net::Method::kGet, "/paka/v1/health",
             [](const net::RequestView&, const net::PathParams&) {
               return net::HttpResponse::json(200, "{\"status\":\"ok\"}");
             });
}

}  // namespace shield5g::paka
