// eAMF P-AKA module (paper Table I): K_AMF derivation from K_SEAF.
#pragma once

#include "paka/deployment.h"

namespace shield5g::paka {

class EamfAkaService final : public PakaService {
 public:
  EamfAkaService(sgx::Machine& machine, net::Bus& bus, PakaOptions options,
                 const std::string& name = "eamf-aka");

 protected:
  void register_routes() override;
  std::uint64_t request_alloc_pages() const override { return 6; }
  std::uint64_t app_extra_bytes() const override { return 600'000; }
};

}  // namespace shield5g::paka
