// P-AKA deployment envelope: the same service code under container or
// SGX isolation (paper §IV).
//
// `SgxEnv` adapts the network substrate's ExecutionEnv interface onto
// the Gramine runtime: every syscall becomes an OCALL round trip,
// computation pays the memory-encryption factor, per-request heap churn
// pays EPC allocation costs, and the first request walks the cold code
// paths (lazy library loading) that produce the paper's R_I spike.
//
// `PakaService` is the base of the three modules (eUDM/eAUSF/eAMF):
// deploy() either "docker run"s the container or GSC-builds + boots the
// enclave, and the module's REST endpoints serve identically in both.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "libos/runtime.h"
#include "net/bus.h"
#include "net/env.h"
#include "sgx/attestation.h"
#include "sgx/enclave_context.h"
#include "sgx/machine.h"

namespace shield5g::paka {

enum class Isolation {
  kContainer,  // plain Docker container (the paper's non-SGX baseline)
  kSgx,        // Gramine-SGX shielded container
};

class SgxEnv final : public net::ExecutionEnv {
 public:
  SgxEnv(libos::GramineRuntime& runtime, Rng& rng);

  void syscall(Sys sys, std::uint64_t bytes = 0) override;
  void compute(sim::Nanos ns) override;
  void alloc_pages(std::uint64_t pages) override;
  void on_first_request() override;
  void on_request(std::uint64_t request_index) override;
  std::string kind() const override { return "sgx"; }
  bool is_sgx() const override { return true; }

  /// Cold-path profile for the first request (Fig. 10b).
  std::uint64_t first_request_pages = 9'000;
  std::uint32_t first_request_ocalls = 200;

 private:
  libos::GramineRuntime& runtime_;
  Rng& rng_;
};

struct PakaOptions {
  Isolation isolation = Isolation::kSgx;
  std::uint64_t epc_size = 512ULL << 20;  // paper default: 512 MB
  std::uint32_t max_threads = 4;          // paper default: 4
  bool preheat = true;
  bool exitless = false;  // paper §V-B7 future-work feature
  /// Request workers of the module's HTTP server under container
  /// isolation. Under SGX the worker count is instead derived from the
  /// TCS budget: max_threads minus the Gramine helper threads (IPC,
  /// async events, pipe-TLS), floor 1 — the paper's "3 helpers + 1
  /// worker" layout at the default max_threads = 4.
  std::uint32_t container_workers = 4;
  /// Bounded FIFO depth in front of the worker pool (0 = unbounded).
  std::uint32_t queue_capacity = 128;
  /// Bound on the eUDM's per-subscriber MILENAGE context cache. Sized
  /// so every existing workload's working set fits (zero evictions →
  /// bit-identical to the old unbounded map) while a 1M-subscriber
  /// serving shard stays at fixed residency.
  std::uint32_t milenage_cache_capacity = 1024;

  /// Enclave worker threads left after the Gramine helpers.
  std::uint32_t sgx_workers() const noexcept {
    constexpr std::uint32_t kGramineHelpers = 3;
    return max_threads > kGramineHelpers ? max_threads - kGramineHelpers : 1;
  }
};

class PakaService {
 public:
  PakaService(std::string name, sgx::Machine& machine, net::Bus& bus,
              PakaOptions options);
  virtual ~PakaService();

  PakaService(const PakaService&) = delete;
  PakaService& operator=(const PakaService&) = delete;

  /// Builds and starts the module; returns the load time (enclave load
  /// for SGX — the Fig. 7 metric — or container start otherwise).
  /// Attaches the server to the bus.
  sim::Nanos deploy();

  /// Stops the module and releases its resources (EPC for SGX).
  void undeploy();

  bool deployed() const noexcept { return deployed_; }
  const std::string& name() const noexcept { return name_; }
  Isolation isolation() const noexcept { return options_.isolation; }
  const PakaOptions& options() const noexcept { return options_; }
  net::Server& server() noexcept { return server_; }
  net::ExecutionEnv& env();
  net::Bus& bus() noexcept { return bus_; }

  /// SGX-only introspection; null under container isolation.
  libos::GramineRuntime* runtime() noexcept { return runtime_.get(); }
  const sgx::TransitionCounters* sgx_counters() const;

  /// Declassification context of the running module: enclave-backed
  /// once an SGX deployment has booted, container-grade otherwise.
  /// Enclave-grade declassification (unsealing long-term keys, KI 27)
  /// is only legal through the former.
  const sgx::EnclaveContext* secret_ctx() const noexcept {
    return &secret_ctx_;
  }

  /// Remote attestation of the running module (SGX only; throws under
  /// container isolation, which has nothing to attest — the point of
  /// KI 13).
  sgx::Quote quote(ByteView report_data);

  /// RA-TLS-style quote binding this module's measurement to its TLS
  /// identity on the bus (report data = SHA-256 of the public key), so
  /// a verifier knows the attested code is the peer it will talk TLS
  /// to. Requires the module to be deployed.
  sgx::Quote identity_quote();

  /// Modeled container cold-start time (image pull cached).
  static constexpr sim::Nanos kContainerStart = 850 * sim::kMillisecond;

 protected:
  /// Subclasses register their REST endpoints here.
  virtual void register_routes() = 0;
  /// Per-request heap churn in pages (drives the per-module L_F factor
  /// under SGX; calibrated against Fig. 9a).
  virtual std::uint64_t request_alloc_pages() const = 0;
  /// Application image-layer size delta (differentiates Fig. 7 bars).
  virtual std::uint64_t app_extra_bytes() const { return 0; }
  /// Hook invoked after the enclave is up (sealed provisioning etc.).
  virtual void on_deployed() {}

  sgx::Machine& machine_;
  net::Bus& bus_;

 private:
  std::string name_;
  PakaOptions options_;
  net::HostEnv host_env_;
  net::Server server_;
  std::unique_ptr<libos::GramineRuntime> runtime_;
  std::unique_ptr<SgxEnv> sgx_env_;
  sgx::EnclaveContext secret_ctx_;
  Bytes signer_key_;
  bool deployed_ = false;
  bool routes_registered_ = false;
};

}  // namespace shield5g::paka
