#include "paka/aka_ausf.h"

#include "nf/aka_core.h"
#include "nf/sbi.h"

namespace shield5g::paka {

EausfAkaService::EausfAkaService(sgx::Machine& machine, net::Bus& bus,
                                 PakaOptions options, const std::string& name)
    : PakaService(name, machine, bus, options) {}

void EausfAkaService::register_routes() {
  auto& router = server().router();

  // SE AV derivation: HXRES* from (RAND, XRES*), K_SEAF from K_AUSF
  // (Table I row "eAUSF").
  router.add(
      net::Method::kPost, "/paka/v1/derive-se",
      [this](const net::RequestView& req, const net::PathParams&) {
        const auto body = nf::parse_body(req.body);
        if (!body) return net::HttpResponse::error(400, "bad json");
        const auto rand = nf::hex_bytes(*body, "rand");
        const auto xres_star = nf::hex_bytes(*body, "xresStar");
        const auto snn = body->get_string("snn");
        const auto kausf = nf::secret_hex_bytes(*body, "kausf");
        if (!rand || rand->size() != 16 || !xres_star ||
            xres_star->size() != 16 || !snn || !kausf ||
            kausf->size() != 32) {
          return net::HttpResponse::error(400, "bad SE parameters");
        }
        const nf::SeDerivation se =
            nf::derive_se(*rand, *xres_star, *kausf, *snn);
        json::Object out;
        out["hxresStar"] = nf::hex_field(se.hxres_star);
        // K_SEAF hand-off to the AUSF proper: audited transport
        // declassification against this module's isolation context.
        out["kseaf"] = nf::secret_hex_field(
            se.kseaf, DeclassifyReason::kTransport, secret_ctx());
        return net::HttpResponse::json(200, json::Value(out).dump());
      });

  router.add(net::Method::kGet, "/paka/v1/health",
             [](const net::RequestView&, const net::PathParams&) {
               return net::HttpResponse::json(200, "{\"status\":\"ok\"}");
             });
}

}  // namespace shield5g::paka
