// eUDM P-AKA module (paper Table I, Fig. 5).
//
// Executes the most sensitive functions of the 5G-AKA home environment:
// MILENAGE f1 / f2345, K_AUSF derivation and AUTN assembly. The
// subscriber long-term key K never crosses the module boundary: it is
// provisioned at deployment — sealed to the enclave measurement under
// SGX isolation (paper §VI, KI 27) — which is why Table I's enclave
// inputs are only OPc, RAND, SQN and AMFid.
#pragma once

#include <map>

#include "common/lru_cache.h"
#include "crypto/milenage.h"
#include "nf/types.h"
#include "paka/deployment.h"
#include "sgx/sealing.h"

namespace shield5g::paka {

class EudmAkaService final : public PakaService {
 public:
  EudmAkaService(sgx::Machine& machine, net::Bus& bus, PakaOptions options,
                 const std::string& name = "eudm-aka");

  /// Container-mode provisioning: plain key table. The key is tainted
  /// on arrival and stays tainted in the table.
  void provision_key(const nf::Supi& supi, SecretBytes k);

  /// SGX-mode provisioning: a blob sealed to this module's measurement.
  /// Returns false when unsealing fails (wrong enclave or tampering).
  /// Re-exposing the unsealed table is enclave-grade declassification
  /// (DeclassifyReason::kUnseal): it only succeeds against the booted
  /// enclave's context.
  bool provision_sealed(const sgx::SealedBlob& blob);

  /// Serializes a key table for sealing by the orchestrator. Lowering
  /// each K to wire bytes is provisioning-grade declassification,
  /// audited against the orchestrator's context (host-grade when null).
  static Bytes serialize_key_table(const std::map<nf::Supi, SecretBytes>& keys,
                                   const sgx::EnclaveContext* ctx = nullptr);

  std::size_t key_count() const noexcept { return keys_.size(); }

 protected:
  void register_routes() override;
  std::uint64_t request_alloc_pages() const override { return 2; }
  std::uint64_t app_extra_bytes() const override { return 2'600'000; }

 private:
  /// Cached MILENAGE context for one subscriber: the AES schedule for K
  /// is expanded once per provisioning, not once per authentication.
  /// The OPc the context was built with is kept for constant-time
  /// revalidation, since OPc arrives with each request. Bounded LRU
  /// (PakaOptions::milenage_cache_capacity) — `keys_` is the
  /// provisioned store and scales with the population; this is hot
  /// state and must not. Evictions land on eudm.milenage.evict.
  struct MilenageEntry {
    SecretBytes opc;
    crypto::Milenage ctx;
  };

  const crypto::Milenage& milenage_for(const nf::Supi& supi,
                                       const SecretBytes& k,
                                       const SecretBytes& opc);

  std::map<nf::Supi, SecretBytes> keys_;
  LruCache<nf::Supi, MilenageEntry> milenage_cache_;
};

}  // namespace shield5g::paka
