#include "paka/aka_amf.h"

#include "nf/aka_core.h"
#include "nf/sbi.h"

namespace shield5g::paka {

EamfAkaService::EamfAkaService(sgx::Machine& machine, net::Bus& bus,
                               PakaOptions options, const std::string& name)
    : PakaService(name, machine, bus, options) {}

void EamfAkaService::register_routes() {
  auto& router = server().router();

  // K_AMF derivation (Table I row "eAMF": K_SEAF in, K_AMF out; the
  // SUPI and ABBA binding parameters ride along as transport fields).
  router.add(
      net::Method::kPost, "/paka/v1/derive-kamf",
      [this](const net::RequestView& req, const net::PathParams&) {
        const auto body = nf::parse_body(req.body);
        if (!body) return net::HttpResponse::error(400, "bad json");
        const auto kseaf = nf::secret_hex_bytes(*body, "kseaf");
        const auto supi = body->get_string("supi");
        if (!kseaf || kseaf->size() != 32 || !supi) {
          return net::HttpResponse::error(400, "bad K_AMF parameters");
        }
        const SecretBytes kamf = nf::derive_kamf_for(*kseaf, *supi);
        json::Object out;
        // K_AMF hand-off to the AMF proper: audited transport
        // declassification against this module's isolation context.
        out["kamf"] = nf::secret_hex_field(
            kamf, DeclassifyReason::kTransport, secret_ctx());
        return net::HttpResponse::json(200, json::Value(out).dump());
      });

  router.add(net::Method::kGet, "/paka/v1/health",
             [](const net::RequestView&, const net::PathParams&) {
               return net::HttpResponse::json(200, "{\"status\":\"ok\"}");
             });
}

}  // namespace shield5g::paka
