// eAUSF P-AKA module (paper Table I): HXRES* and K_SEAF derivation.
#pragma once

#include "paka/deployment.h"

namespace shield5g::paka {

class EausfAkaService final : public PakaService {
 public:
  EausfAkaService(sgx::Machine& machine, net::Bus& bus, PakaOptions options,
                  const std::string& name = "eausf-aka");

 protected:
  void register_routes() override;
  std::uint64_t request_alloc_pages() const override { return 4; }
  std::uint64_t app_extra_bytes() const override { return 1'400'000; }
};

}  // namespace shield5g::paka
