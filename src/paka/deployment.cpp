#include "paka/deployment.h"

#include <stdexcept>

#include "common/log.h"
#include "crypto/sha256.h"
#include "libos/gsc.h"

namespace shield5g::paka {

SgxEnv::SgxEnv(libos::GramineRuntime& runtime, Rng& rng)
    : runtime_(runtime), rng_(rng) {}

void SgxEnv::syscall(Sys sys, std::uint64_t bytes) {
  runtime_.syscall(sys, bytes);
}

void SgxEnv::compute(sim::Nanos ns) { runtime_.compute(ns); }

void SgxEnv::alloc_pages(std::uint64_t pages) { runtime_.alloc_pages(pages); }

void SgxEnv::on_first_request() {
  // Lazy loading of network-stack dependencies plus demand faults of
  // cold code paths (paper §V-B4: the initial request "invokes several
  // OCALLs and ECALLs to load drivers and other network stack
  // dependencies"); once cached, subsequent requests are served fast.
  std::uint64_t pages = first_request_pages;
  if (!runtime_.image().manifest.preheat_enclave) {
    // Without preheat the first requests additionally fault the whole
    // heap working set (the cost preheat moved into the load phase).
    pages += 45'000;
  }
  runtime_.touch_cold_path(pages, first_request_ocalls);
}

void SgxEnv::on_request(std::uint64_t /*request_index*/) {
  // Oversized-EPC paging pressure (Fig. 8): with the EPC sized far
  // beyond the working set, background paging occasionally interrupts a
  // request, adding a small mean penalty and widening the IQR.
  const auto& costs = runtime_.enclave().machine().costs();
  const double configured_gib =
      static_cast<double>(runtime_.image().manifest.enclave_size) /
      static_cast<double>(1ULL << 30);
  const double excess_gib = configured_gib - 0.5;
  if (excess_gib <= 0) return;
  const double p = costs.paging_rate_per_gib * excess_gib;
  if (rng_.uniform01() < p) {
    runtime_.page_swap(1 + rng_.uniform(24));
  }
}

PakaService::PakaService(std::string name, sgx::Machine& machine,
                         net::Bus& bus, PakaOptions options)
    : machine_(machine),
      bus_(bus),
      name_(std::move(name)),
      options_(options),
      host_env_(bus.clock()),
      server_(name_, host_env_, bus.costs()),
      secret_ctx_(sgx::EnclaveContext::container(name_)) {
  signer_key_ = machine_.rng().bytes(32);
}

PakaService::~PakaService() {
  if (deployed_) {
    bus_.detach(name_);
  }
}

net::ExecutionEnv& PakaService::env() {
  if (sgx_env_ != nullptr) return *sgx_env_;
  return host_env_;
}

const sgx::TransitionCounters* PakaService::sgx_counters() const {
  return runtime_ != nullptr && runtime_->booted()
             ? &runtime_->counters()
             : nullptr;
}

sgx::Quote PakaService::quote(ByteView report_data) {
  if (runtime_ == nullptr || !runtime_->booted()) {
    throw std::logic_error(
        "PakaService: no enclave to attest (container isolation)");
  }
  return sgx::generate_quote(runtime_->enclave(), report_data);
}

sgx::Quote PakaService::identity_quote() {
  const auto identity = bus_.server_identity(name_);
  if (!identity) {
    throw std::logic_error("PakaService: not attached to the bus");
  }
  return quote(crypto::Sha256::digest(*identity));
}

sim::Nanos PakaService::deploy() {
  if (deployed_) throw std::logic_error("PakaService: already deployed");
  if (!routes_registered_) {
    register_routes();
    routes_registered_ = true;
  }
  server_.profile().alloc_pages = request_alloc_pages();

  sim::Nanos load_time = 0;
  if (options_.isolation == Isolation::kSgx) {
    libos::GscBuildOptions build;
    build.enclave_size = options_.epc_size;
    build.max_threads = options_.max_threads;
    build.preheat_enclave = options_.preheat;
    build.exitless = options_.exitless;
    build.app_extra_bytes = app_extra_bytes();
    // Stable per-module rootfs variation.
    build.rootfs_seed = static_cast<std::uint32_t>(
        std::hash<std::string>{}(name_) & 0xffff);
    const libos::GscImage image =
        libos::gsc_build(name_, build, signer_key_);
    runtime_ = std::make_unique<libos::GramineRuntime>(machine_, image);
    load_time = runtime_->boot();
    sgx_env_ = std::make_unique<SgxEnv>(*runtime_, bus_.rng());
    server_.rebind_env(*sgx_env_);
    // From here on this module's declassifications are enclave-backed:
    // unsealing-grade exposure of long-term keys becomes legal (KI 27)
    // and is audited under secret.declassify.*.shielded.
    secret_ctx_ =
        sgx::EnclaveContext::enclave_backed(name_, &runtime_->enclave());
  } else {
    machine_.clock().advance(kContainerStart);
    load_time = kContainerStart;
    server_.rebind_env(host_env_);
    secret_ctx_ = sgx::EnclaveContext::container(name_);
  }

  // Server startup inside the deployment environment: TLS certificate
  // loading, listening socket + epoll setup and worker-pool
  // synchronisation. Under SGX this is the "~650 EENTER and EEXIT
  // instructions" the paper attributes to deploying the Pistache server
  // in the enclave (§V-B5).
  net::ExecutionEnv& run_env = env();
  for (int cert = 0; cert < 3; ++cert) {
    run_env.syscall(Sys::kOpen);
    run_env.syscall(Sys::kRead, 2'200);
    run_env.syscall(Sys::kClose);
  }
  run_env.syscall(Sys::kSocket);
  run_env.syscall(Sys::kBind);
  run_env.syscall(Sys::kListen);
  run_env.syscall(Sys::kEpollCreate);
  for (int i = 0; i < 200; ++i) run_env.syscall(Sys::kFutex);
  for (int i = 0; i < 105; ++i) {
    run_env.syscall(i % 2 == 0 ? Sys::kStat : Sys::kMmap);
  }

  // Concurrency limit of the module's request pipeline: the container
  // worker pool, or the enclave TCS budget net of Gramine helpers.
  net::ServiceQueue::Config queue;
  queue.workers = options_.isolation == Isolation::kSgx
                      ? options_.sgx_workers()
                      : options_.container_workers;
  queue.capacity = options_.queue_capacity;
  server_.queue().configure(queue);

  server_.reset_served();
  bus_.attach(server_);
  deployed_ = true;
  on_deployed();
  S5G_LOG(LogLevel::kInfo, "paka")
      << name_ << " deployed (" << env().kind() << ") in "
      << sim::to_s(load_time) << " s";
  return load_time;
}

void PakaService::undeploy() {
  if (!deployed_) return;
  bus_.detach(name_);
  // The enclave (if any) is going away: drop back to a container-grade
  // context before the backing pointer dies.
  secret_ctx_ = sgx::EnclaveContext::container(name_);
  if (runtime_ != nullptr) {
    server_.rebind_env(host_env_);
    sgx_env_.reset();
    runtime_.reset();  // tears the enclave down, releasing EPC
  }
  deployed_ = false;
}

}  // namespace shield5g::paka
