// Network-slice orchestrator: composes the full testbed of the paper —
// core VNFs, P-AKA modules under the selected isolation, gNB and
// subscribers — enforcing the deployment policies of §IV-B (P-AKA
// modules co-located with their parent VNFs, attested before admission,
// key material delivered sealed).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/eph_pool.h"
#include "net/bus.h"
#include "nf/amf.h"
#include "nf/ausf.h"
#include "nf/nrf.h"
#include "nf/smf.h"
#include "nf/udm.h"
#include "nf/udr.h"
#include "nf/upf.h"
#include "paka/aka_amf.h"
#include "paka/aka_ausf.h"
#include "paka/aka_udm.h"
#include "ran/gnb.h"
#include "ran/gnbsim.h"
#include "sgx/machine.h"
#include "sim/clock.h"

namespace shield5g::slice {

enum class IsolationMode {
  kMonolithic,  // AKA functions inside the VNFs (legacy OAI layout)
  kContainer,   // external P-AKA modules in plain containers
  kSgx,         // external P-AKA modules in SGX enclaves (the paper)
};

const char* isolation_mode_name(IsolationMode mode) noexcept;

struct SliceConfig {
  IsolationMode mode = IsolationMode::kSgx;
  nf::Plmn plmn;                       // default 001/01 (test PLMN)
  std::uint32_t subscriber_count = 8;
  paka::PakaOptions paka;              // EPC size / threads / preheat ...
  /// Horizontal scaling of the heaviest module (paper §V-B7): the UDM
  /// round-robins AV generation across this many eUDM replicas.
  std::uint32_t eudm_replicas = 1;
  bool keep_alive = false;             // SBI connection reuse
  /// TLS session resumption on the SBI bus: after the first contact
  /// between a (client, server) pair every handshake is ticket-based —
  /// zero scalar mults. Off by default: the legacy wire path stays the
  /// bit-identity oracle.
  bool tls_resumption = false;
  /// Ephemeral X25519 precompute pool shared by full TLS handshakes and
  /// SUCI concealment. Deterministically seeded from `seed`, so sweeps
  /// stay reproducible; off by default for the same oracle reason.
  bool eph_pool = false;
  /// Request workers per core VNF (UDR/UDM/AUSF/AMF/SMF/NRF) and the
  /// bounded FIFO depth in front of them. P-AKA module concurrency is
  /// configured separately via `paka` (TCS-derived under SGX).
  std::uint32_t vnf_workers = 4;
  std::uint32_t vnf_queue_capacity = 256;
  std::uint64_t seed = 0x51C3ULL;
  /// Serving-plane population mode (load/serving.h): when non-empty,
  /// the slice provisions exactly these *global* subscriber ids instead
  /// of ids [0, subscriber_count). Credentials derive from a per-id Rng
  /// (seed ^ 0xc4ed, mixed with the id), so a subscriber's K/OPc/SQN
  /// depend only on (seed domain, id) — never on which shard's slice
  /// provisions it or in what order. No fat per-subscriber vector is
  /// kept: `subscriber(i)` re-derives on demand and the UDR's columnar
  /// store is the only resident copy. Local index i maps to global id
  /// population[i]. Empty (the default) keeps the sequential-draw path
  /// bit-identical to every prior PR.
  std::vector<std::uint32_t> population;
  net::NetCosts net_costs;
  sgx::CostModel sgx_costs;
};

/// Everything a bench needs to know about slice creation.
struct SliceCreation {
  sim::Nanos total = 0;
  sim::Nanos eudm_load = 0;
  sim::Nanos eausf_load = 0;
  sim::Nanos eamf_load = 0;
  bool attestation_ok = false;  // SGX mode only
  bool sealed_provisioning_ok = false;
};

class Slice {
 public:
  explicit Slice(SliceConfig config);
  ~Slice();

  Slice(const Slice&) = delete;
  Slice& operator=(const Slice&) = delete;

  /// Deploys the whole slice; in SGX mode this includes GSC builds,
  /// enclave loads (the Fig. 7 metric), remote attestation of all three
  /// modules and sealed delivery of the eUDM key table.
  SliceCreation create();

  bool created() const noexcept { return created_; }
  const SliceConfig& config() const noexcept { return config_; }

  // ---- Component access ------------------------------------------------
  sim::VirtualClock& clock() noexcept { return clock_; }
  sgx::Machine& machine() noexcept { return machine_; }
  net::Bus& bus() noexcept { return bus_; }
  /// Ephemeral-key pool (nullptr unless SliceConfig::eph_pool).
  crypto::EphemeralKeyPool* eph_pool() noexcept { return eph_pool_.get(); }
  /// Home-network ECIES public key (the peer of every SUCI conceal) —
  /// lets the load generator prewarm the pool's shared-secret batches.
  const crypto::X25519Key& hn_public() const noexcept {
    return hn_key_.public_key;
  }
  nf::Udr& udr() noexcept { return *udr_; }
  nf::Udm& udm() noexcept { return *udm_; }
  nf::Ausf& ausf() noexcept { return *ausf_; }
  nf::Amf& amf() noexcept { return *amf_; }
  nf::Smf& smf() noexcept { return *smf_; }
  nf::Nrf& nrf() noexcept { return *nrf_; }
  nf::Upf& upf() noexcept { return *upf_; }
  ran::Gnb& gnb() noexcept { return *gnb_; }
  ran::GnbSim& gnbsim() noexcept { return *gnbsim_; }
  /// First (or only) eUDM replica.
  paka::EudmAkaService* eudm() noexcept {
    return eudm_replicas_.empty() ? nullptr : eudm_replicas_.front().get();
  }
  paka::EausfAkaService* eausf() noexcept { return eausf_.get(); }
  paka::EamfAkaService* eamf() noexcept { return eamf_.get(); }
  const std::vector<std::unique_ptr<paka::EudmAkaService>>& eudm_replicas()
      const noexcept {
    return eudm_replicas_;
  }

  /// USIM configuration for subscriber `i` (matches the UDR record).
  ran::UsimConfig subscriber(std::uint32_t i) const;

  /// Provisioned subscribers addressable by subscriber(i): the
  /// population size in population mode, subscriber_count otherwise.
  std::uint32_t subscriber_capacity() const noexcept {
    return config_.population.empty()
               ? config_.subscriber_count
               : static_cast<std::uint32_t>(config_.population.size());
  }

  /// Convenience: full registration (+ PDU session) of subscriber `i`.
  ran::RegistrationResult register_subscriber(std::uint32_t i,
                                              bool with_pdu = true);

 private:
  void provision_subscribers();
  bool attest_modules();
  bool provision_sealed_keys();
  /// Population-mode credential derivation for one global id.
  nf::SubscriberRecord derived_record(std::uint32_t gid) const;
  ran::UsimConfig usim_for(const nf::SubscriberRecord& rec) const;

  SliceConfig config_;
  sim::VirtualClock clock_;
  sgx::Machine machine_;
  net::Bus bus_;
  Rng cred_rng_;
  crypto::X25519KeyPair hn_key_;
  std::unique_ptr<crypto::EphemeralKeyPool> eph_pool_;

  std::unique_ptr<nf::Upf> upf_;
  std::unique_ptr<nf::Udr> udr_;
  std::unique_ptr<nf::Udm> udm_;
  std::unique_ptr<nf::Ausf> ausf_;
  std::unique_ptr<nf::Amf> amf_;
  std::unique_ptr<nf::Smf> smf_;
  std::unique_ptr<nf::Nrf> nrf_;
  std::vector<std::unique_ptr<paka::EudmAkaService>> eudm_replicas_;
  std::unique_ptr<paka::EausfAkaService> eausf_;
  std::unique_ptr<paka::EamfAkaService> eamf_;
  std::unique_ptr<ran::Gnb> gnb_;
  std::unique_ptr<ran::GnbSim> gnbsim_;

  std::vector<nf::SubscriberRecord> subscribers_;
  bool created_ = false;
};

}  // namespace shield5g::slice
