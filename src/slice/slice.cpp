#include "slice/slice.h"

#include <cstdio>
#include <initializer_list>
#include <map>
#include <stdexcept>

#include "common/log.h"
#include "crypto/sha256.h"
#include "crypto/key_hierarchy.h"
#include "nf/sbi.h"
#include "sgx/attestation.h"
#include "sgx/sealing.h"

namespace shield5g::slice {

const char* isolation_mode_name(IsolationMode mode) noexcept {
  switch (mode) {
    case IsolationMode::kMonolithic: return "monolithic";
    case IsolationMode::kContainer: return "container";
    case IsolationMode::kSgx: return "sgx";
  }
  return "?";
}

Slice::Slice(SliceConfig config)
    : config_(std::move(config)),
      machine_(clock_, config_.sgx_costs, config_.seed ^ 0x5658ULL),
      bus_(clock_, config_.net_costs, config_.seed ^ 0xb05ULL),
      cred_rng_(config_.seed ^ 0xc4edULL) {
  bus_.set_keep_alive(config_.keep_alive);
  // Resumption must be armed before any attach() below so every server
  // gets a ticket issuer; the pool is seeded from the slice seed so a
  // sweep's digests stay reproducible at any worker count.
  if (config_.tls_resumption) bus_.set_resumption(true);
  if (config_.eph_pool) {
    crypto::EphemeralKeyPool::Config pool_cfg;
    pool_cfg.seed = config_.seed ^ 0xe9aULL;
    eph_pool_ = std::make_unique<crypto::EphemeralKeyPool>(pool_cfg);
    bus_.set_eph_pool(eph_pool_.get());
  }
  hn_key_ = crypto::x25519_keypair(cred_rng_.bytes(32));

  // Monolithic layout: the core VNFs (AKA functions included) share one
  // address space with no isolation boundary, so every VNF-to-VNF hop
  // qualifies for the bus's co-located delivery fast path (DESIGN.md
  // §18). Container and SGX deployments keep the default isolated
  // domain — their boundaries are the paper's subject, and the wire
  // ceremony across them is load-bearing.
  if (config_.mode == IsolationMode::kMonolithic) {
    bus_.set_attach_domain(1);
  }

  const nf::AkaDeployment deployment =
      config_.mode == IsolationMode::kMonolithic
          ? nf::AkaDeployment::kMonolithic
          : nf::AkaDeployment::kExternal;

  upf_ = std::make_unique<nf::Upf>(clock_);
  udr_ = std::make_unique<nf::Udr>(bus_);
  nrf_ = std::make_unique<nf::Nrf>(bus_);
  smf_ = std::make_unique<nf::Smf>(bus_, *upf_);

  nf::UdmConfig udm_cfg;
  udm_cfg.deployment = deployment;
  udm_cfg.hn_key = hn_key_;
  if (config_.eudm_replicas > 1) {
    udm_cfg.eudm_services.clear();
    for (std::uint32_t i = 0; i < config_.eudm_replicas; ++i) {
      udm_cfg.eudm_services.push_back("eudm-aka-" + std::to_string(i));
    }
  }
  udm_ = std::make_unique<nf::Udm>(bus_, udm_cfg);

  nf::AusfConfig ausf_cfg;
  ausf_cfg.deployment = deployment;
  ausf_cfg.allowed_snns.insert(
      crypto::serving_network_name(config_.plmn.mcc, config_.plmn.mnc));
  ausf_ = std::make_unique<nf::Ausf>(bus_, ausf_cfg);

  nf::AmfConfig amf_cfg;
  amf_cfg.deployment = deployment;
  amf_cfg.plmn = config_.plmn;
  amf_ = std::make_unique<nf::Amf>(bus_, amf_cfg);

  if (config_.mode != IsolationMode::kMonolithic) {
    paka::PakaOptions paka = config_.paka;
    paka.isolation = config_.mode == IsolationMode::kSgx
                         ? paka::Isolation::kSgx
                         : paka::Isolation::kContainer;
    if (config_.eudm_replicas > 1) {
      for (std::uint32_t i = 0; i < config_.eudm_replicas; ++i) {
        eudm_replicas_.push_back(std::make_unique<paka::EudmAkaService>(
            machine_, bus_, paka, "eudm-aka-" + std::to_string(i)));
      }
    } else {
      eudm_replicas_.push_back(
          std::make_unique<paka::EudmAkaService>(machine_, bus_, paka));
    }
    eausf_ = std::make_unique<paka::EausfAkaService>(machine_, bus_, paka);
    eamf_ = std::make_unique<paka::EamfAkaService>(machine_, bus_, paka);
  }

  const net::ServiceQueue::Config vnf_queue{config_.vnf_workers,
                                            config_.vnf_queue_capacity};
  for (nf::Vnf* vnf : std::initializer_list<nf::Vnf*>{
           udr_.get(), nrf_.get(), smf_.get(), udm_.get(), ausf_.get(),
           amf_.get()}) {
    vnf->server().queue().configure(vnf_queue);
  }

  gnb_ = std::make_unique<ran::Gnb>(
      clock_, *amf_, ran::CellConfig{config_.plmn, 3.6192, 106, "oai-gnb"},
      ran::RadioCosts{}, ran::NgapCosts{}, config_.seed ^ 0x69bULL);
  gnbsim_ = std::make_unique<ran::GnbSim>(*gnb_);
}

Slice::~Slice() = default;

nf::SubscriberRecord Slice::derived_record(std::uint32_t gid) const {
  nf::SubscriberRecord rec;
  char msin[16];
  std::snprintf(msin, sizeof(msin), "%010u", 100000000u + gid);
  rec.supi = nf::Supi::from_parts(config_.plmn, msin);
  // Per-id stream: the credentials depend only on (seed, gid), never on
  // provisioning order — every shard layout derives the same subscriber.
  Rng rng(config_.seed ^ 0xc4edULL ^
          (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(gid) + 1)));
  rec.k = rng.bytes(16);
  rec.opc = rng.bytes(16);
  rec.sqn = 0x100 + 0x40ULL * gid;
  return rec;
}

void Slice::provision_subscribers() {
  subscribers_.clear();
  if (!config_.population.empty()) {
    // Population mode: the columnar UDR store is the only resident copy
    // — no fat SubscriberRecord vector at 1M subscribers.
    udr_->reserve_subscribers(config_.population.size());
    for (const std::uint32_t gid : config_.population) {
      udr_->provision(derived_record(gid));
    }
    return;
  }
  subscribers_.reserve(config_.subscriber_count);
  for (std::uint32_t i = 0; i < config_.subscriber_count; ++i) {
    nf::SubscriberRecord rec;
    char msin[16];
    std::snprintf(msin, sizeof(msin), "%010u", 100000000u + i);
    rec.supi = nf::Supi::from_parts(config_.plmn, msin);
    rec.k = cred_rng_.bytes(16);
    rec.opc = cred_rng_.bytes(16);
    rec.sqn = 0x100 + 0x40ULL * i;
    udr_->provision(rec);
    subscribers_.push_back(std::move(rec));
  }
}

bool Slice::attest_modules() {
  // KI 13: verify each module's RA-TLS quote against the platform
  // attestation service before admitting it into the AKA chain. The
  // quote binds the enclave measurement to the module's pinned TLS key,
  // so both "who is this code" and "who am I about to talk to" are
  // checked in one step.
  const sgx::AttestationVerifier verifier(
      Bytes(machine_.attestation_key().begin(),
            machine_.attestation_key().end()));
  std::vector<paka::PakaService*> modules;
  for (const auto& replica : eudm_replicas_) modules.push_back(replica.get());
  modules.push_back(eausf_.get());
  modules.push_back(eamf_.get());
  for (paka::PakaService* module : modules) {
    const sgx::Quote quote = module->identity_quote();
    const auto identity = bus_.server_identity(module->name());
    if (!identity ||
        !verifier.verify(quote,
                         module->runtime()->enclave().measurement()) ||
        !ct_equal(quote.report_data, crypto::Sha256::digest(*identity))) {
      S5G_LOG(LogLevel::kError, "slice")
          << "attestation failed for " << module->name();
      return false;
    }
  }
  return true;
}

bool Slice::provision_sealed_keys() {
  // KI 27: the subscriber key table reaches each eUDM enclave sealed to
  // its measurement; a plaintext K never appears in any image or on the
  // provisioning path.
  std::map<nf::Supi, SecretBytes> keys;
  for (const auto& rec : subscribers_) keys[rec.supi] = rec.k;
  for (const std::uint32_t gid : config_.population) {
    nf::SubscriberRecord rec = derived_record(gid);
    keys[rec.supi] = std::move(rec.k);
  }
  const Bytes table = paka::EudmAkaService::serialize_key_table(keys);
  for (const auto& replica : eudm_replicas_) {
    const sgx::SealedBlob blob =
        sgx::seal(replica->runtime()->enclave(), table, cred_rng_.bytes(16));
    if (!replica->provision_sealed(blob)) return false;
  }
  return true;
}

SliceCreation Slice::create() {
  if (created_) throw std::logic_error("Slice: already created");
  SliceCreation creation;
  const sim::Nanos start = clock_.now();

  provision_subscribers();

  // NF profile registration with the NRF (mutual discovery).
  struct Reg { const char* id; const char* type; const char* service; };
  for (const Reg& reg :
       {Reg{"udm-1", "UDM", "udm"}, Reg{"ausf-1", "AUSF", "ausf"},
        Reg{"amf-1", "AMF", "amf"}, Reg{"smf-1", "SMF", "smf"},
        Reg{"udr-1", "UDR", "udr"}}) {
    json::Object profile;
    profile["nfType"] = reg.type;
    profile["serviceName"] = reg.service;
    bus_.request("orchestrator", "nrf",
                 nf::json_put("/nnrf-nfm/v1/nf-instances/" +
                                  std::string(reg.id),
                              json::Value(std::move(profile))));
  }

  if (config_.mode != IsolationMode::kMonolithic) {
    for (const auto& replica : eudm_replicas_) {
      creation.eudm_load = replica->deploy();
    }
    creation.eausf_load = eausf_->deploy();
    creation.eamf_load = eamf_->deploy();

    if (config_.mode == IsolationMode::kSgx) {
      creation.attestation_ok = attest_modules();
      creation.sealed_provisioning_ok = provision_sealed_keys();
      if (!creation.attestation_ok || !creation.sealed_provisioning_ok) {
        throw std::runtime_error("Slice: P-AKA admission failed");
      }
    } else {
      for (const auto& replica : eudm_replicas_) {
        for (const auto& rec : subscribers_) {
          replica->provision_key(rec.supi, rec.k);
        }
        for (const std::uint32_t gid : config_.population) {
          nf::SubscriberRecord rec = derived_record(gid);
          replica->provision_key(rec.supi, std::move(rec.k));
        }
      }
      creation.attestation_ok = false;
      creation.sealed_provisioning_ok = false;
    }
  }

  created_ = true;
  creation.total = clock_.now() - start;
  S5G_LOG(LogLevel::kInfo, "slice")
      << "slice created (" << isolation_mode_name(config_.mode) << ") in "
      << sim::to_s(creation.total) << " s";
  return creation;
}

ran::UsimConfig Slice::subscriber(std::uint32_t i) const {
  if (!config_.population.empty()) {
    // Population mode re-derives on demand — O(1) memory per call, and
    // identical to what provision_subscribers() put in the UDR.
    if (i >= config_.population.size()) {
      throw std::out_of_range("Slice: subscriber index");
    }
    return usim_for(derived_record(config_.population[i]));
  }
  if (i >= subscribers_.size()) {
    throw std::out_of_range("Slice: subscriber index");
  }
  return usim_for(subscribers_[i]);
}

ran::UsimConfig Slice::usim_for(const nf::SubscriberRecord& rec) const {
  ran::UsimConfig usim;
  usim.plmn = config_.plmn;
  usim.msin = rec.supi.value.substr(config_.plmn.id().size());
  usim.k = rec.k;
  usim.opc = rec.opc;
  // The USIM's SQNms trails the network's by one step at provisioning.
  usim.sqn_ms = rec.sqn > 0 ? rec.sqn - 1 : 0;
  usim.hn_public = Bytes(hn_key_.public_key.begin(),
                         hn_key_.public_key.end());
  return usim;
}

ran::RegistrationResult Slice::register_subscriber(std::uint32_t i,
                                                   bool with_pdu) {
  ran::UeDevice ue(subscriber(i), config_.seed ^ (0x0eULL + i),
                   eph_pool_.get());
  return gnbsim_->register_ue(ue, with_pdu);
}

}  // namespace shield5g::slice
