// Small discrete-event scheduler layered on the virtual clock.
//
// The registration flows themselves run as synchronous call chains (the
// paper's P-AKA servers are single-threaded and its experiments register
// one UE at a time), but the scheduler is used for time-driven activity:
// gNBSIM pacing of mass registrations, periodic SQN refreshes, and idle
// windows between experiment iterations.
//
// Event ordering contract: events fire in (timestamp, FIFO) order — a
// global sequence number breaks every same-instant tie in insertion
// order. The structure behind the contract is a two-part queue:
//
//  * an indexed 4-ary min-heap of POD {when, seq, slot} entries keyed
//    on (when, seq). Tasks live in a separate slot vector with a free
//    list, so sift-up/down moves 16-byte PODs instead of std::function
//    objects, and reserve() pre-sizes both arrays for a whole slice run;
//  * a near-term event ring for the dominant append-in-time-order
//    pattern (arrival schedules are drawn sorted; engine continuations
//    land at now + elapsed while the clock is monotone). An at() whose
//    timestamp is >= the ring's tail is appended in O(1); the ring is
//    therefore sorted by construction and pop merges ring front against
//    heap top by (when, seq) — provably the same total order a single
//    priority queue would produce, at a fraction of the comparisons.
//
// Counters (wall-path observability, never fed to digests):
// scheduler.events.{pushed,popped} accumulate per drain;
// scheduler.events.peak is a high-water mark of pending events.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clock.h"

namespace shield5g::sim {

class Scheduler {
 public:
  explicit Scheduler(VirtualClock& clock) : clock_(clock) {}

  using Task = std::function<void()>;

  /// Schedules `task` to run at absolute virtual instant `at`.
  void at(Nanos when, Task task);

  /// Schedules `task` to run `delay` after the current instant.
  void after(Nanos delay, Task task) { at(clock_.now() + delay, task); }

  /// Pre-sizes the heap, ring and task-slot storage for about `events`
  /// concurrently pending events (one slice run's arrival schedule).
  void reserve(std::size_t events);

  /// Runs events in timestamp order until the queue drains.
  /// The clock is advanced to each event's instant before dispatch.
  void run();

  /// Runs events with timestamps <= `deadline`, then advances the clock
  /// to `deadline` (events scheduled later stay queued).
  void run_until(Nanos deadline);

  bool empty() const noexcept { return pending() == 0; }
  std::size_t pending() const noexcept {
    return heap_.size() + (ring_.size() - ring_head_);
  }

  VirtualClock& clock() noexcept { return clock_; }

 private:
  /// POD heap/ring entry; the task lives in slots_[slot].
  struct Entry {
    Nanos when;
    std::uint64_t seq;  // tie-break: FIFO among same-instant events
    std::uint32_t slot;
  };
  static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot(Task task);
  void push_heap(Entry entry);
  /// Removes and returns the globally next entry (ring front vs heap
  /// top). Pre: !empty().
  Entry pop_next();
  void note_pushed();
  void publish_counters();

  VirtualClock& clock_;
  std::vector<Entry> heap_;       // 4-ary min-heap on (when, seq)
  std::vector<Entry> ring_;       // sorted by construction; FIFO drain
  std::size_t ring_head_ = 0;
  std::vector<Task> slots_;       // stable task storage behind entries
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  // Drain-local counter accumulation, folded into the global registry
  // at the end of each run()/run_until() (one locked add per drain, not
  // per event).
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace shield5g::sim
