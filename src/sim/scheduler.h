// Small discrete-event scheduler layered on the virtual clock.
//
// The registration flows themselves run as synchronous call chains (the
// paper's P-AKA servers are single-threaded and its experiments register
// one UE at a time), but the scheduler is used for time-driven activity:
// gNBSIM pacing of mass registrations, periodic SQN refreshes, and idle
// windows between experiment iterations.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/clock.h"

namespace shield5g::sim {

class Scheduler {
 public:
  explicit Scheduler(VirtualClock& clock) : clock_(clock) {}

  using Task = std::function<void()>;

  /// Schedules `task` to run at absolute virtual instant `at`.
  void at(Nanos when, Task task);

  /// Schedules `task` to run `delay` after the current instant.
  void after(Nanos delay, Task task) { at(clock_.now() + delay, task); }

  /// Runs events in timestamp order until the queue drains.
  /// The clock is advanced to each event's instant before dispatch.
  void run();

  /// Runs events with timestamps <= `deadline`, then advances the clock
  /// to `deadline` (events scheduled later stay queued).
  void run_until(Nanos deadline);

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  VirtualClock& clock() noexcept { return clock_; }

 private:
  struct Event {
    Nanos when;
    std::uint64_t seq;  // tie-break: FIFO among same-instant events
    Task task;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  VirtualClock& clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace shield5g::sim
