// Virtual clock — the time base for the whole testbed simulation.
//
// Every component charges its modeled cost (enclave transitions, TLS
// record processing, bridge latency, crypto execution, ...) by advancing
// a shared VirtualClock. The clock never moves on its own, which makes
// every experiment deterministic and independent of host machine speed.
//
// Observers may subscribe to time advancement; the SGX machine model uses
// this to accrue Asynchronous Enclave Exits (AEX) from the simulated OS
// timer interrupt while enclave threads are resident.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace shield5g::sim {

/// Virtual nanoseconds since simulation start.
using Nanos = std::uint64_t;

constexpr Nanos kMicrosecond = 1'000;
constexpr Nanos kMillisecond = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

inline double to_us(Nanos ns) { return static_cast<double>(ns) / 1e3; }
inline double to_ms(Nanos ns) { return static_cast<double>(ns) / 1e6; }
inline double to_s(Nanos ns) { return static_cast<double>(ns) / 1e9; }

class VirtualClock {
 public:
  /// Called with (previous_now, new_now) after each advancement.
  using Observer = std::function<void(Nanos, Nanos)>;

  Nanos now() const noexcept { return now_; }

  /// Moves time forward by `delta` and notifies observers.
  void advance(Nanos delta);

  /// Moves time forward to an absolute instant (>= now).
  void advance_to(Nanos instant);

  /// Engine-internal: moves time *backwards* to `instant` (<= now).
  /// Observers are NOT notified — the rewound interval was a lookahead
  /// (a concurrent request chain computed atomically into the future by
  /// the load engine), not wall time that un-happens. Use ClockSpan
  /// rather than calling this directly.
  void rewind(Nanos instant);

  /// Registers an observer; returns an id usable with remove_observer.
  std::size_t add_observer(Observer fn);
  void remove_observer(std::size_t id);

 private:
  Nanos now_ = 0;
  std::vector<std::pair<std::size_t, Observer>> observers_;
  std::size_t next_id_ = 1;
};

/// Lookahead window for the concurrent load engine: a synchronous call
/// chain runs inline (advancing the clock through queueing and service
/// charges), then `close()` rewinds to the start instant and reports the
/// elapsed virtual time so the caller can schedule the chain's completion
/// as a discrete event. Other chains dispatched in between observe the
/// first chain's server occupancy through per-server queue state, not
/// through the clock — that is what turns the synchronous pipeline into a
/// concurrent one without giving up determinism.
class ClockSpan {
 public:
  explicit ClockSpan(VirtualClock& clock)
      : clock_(clock), start_(clock.now()) {}
  ~ClockSpan() {
    if (!closed_) clock_.rewind(start_);
  }

  ClockSpan(const ClockSpan&) = delete;
  ClockSpan& operator=(const ClockSpan&) = delete;

  Nanos start() const noexcept { return start_; }
  Nanos elapsed() const noexcept { return clock_.now() - start_; }

  /// Rewinds the clock to the span's start; returns the elapsed time.
  Nanos close() {
    const Nanos e = elapsed();
    clock_.rewind(start_);
    closed_ = true;
    return e;
  }

 private:
  VirtualClock& clock_;
  Nanos start_;
  bool closed_ = false;
};

}  // namespace shield5g::sim
