#include "sim/shard_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "common/thread_annotations.h"

namespace shield5g::sim {

unsigned shard_workers(unsigned requested) noexcept {
  // A hard ceiling so a typo'd env value cannot fork-bomb the host.
  constexpr unsigned kMaxWorkers = 256;
  unsigned resolved = requested;
  if (resolved == 0) {
    if (const char* env = std::getenv("SHIELD5G_SHARD_WORKERS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) resolved = static_cast<unsigned>(parsed);
    }
  }
  if (resolved == 0) resolved = std::thread::hardware_concurrency();
  if (resolved == 0) resolved = 1;
  return resolved < kMaxWorkers ? resolved : kMaxWorkers;
}

namespace {

// One run()'s worth of work. Heap-allocated and shared between the
// caller and every worker that observed its generation: a worker that
// wakes late (after the batch drained and a new run began) still holds
// the *old* batch, finds `next` exhausted and backs off — it can never
// claim shards or touch state from a batch it was not dispatched for.
struct Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t jobs = 0;
  std::atomic<std::size_t> next{0};

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done SHIELD_GUARDED_BY(mutex) = 0;
  std::exception_ptr first_error SHIELD_GUARDED_BY(mutex);

  // Claims and executes shards until the batch is exhausted. Every
  // participant accounts the shards it finished; the last one to push
  // `done` to `jobs` wakes the caller.
  void work() {
    std::size_t finished = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) break;
      try {
        (*fn)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
      ++finished;
    }
    if (finished == 0) return;
    bool all_done = false;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      done += finished;
      all_done = done == jobs;
    }
    if (all_done) done_cv.notify_all();
  }
};

}  // namespace

struct ShardPool::State {
  std::mutex mutex;
  std::condition_variable cv;
  bool stop SHIELD_GUARDED_BY(mutex) = false;
  std::uint64_t generation SHIELD_GUARDED_BY(mutex) = 0;
  std::shared_ptr<Batch> batch SHIELD_GUARDED_BY(mutex);
};

ShardPool::ShardPool(unsigned workers)
    : workers_(shard_workers(workers)), state_(std::make_unique<State>()) {
  // The calling thread is worker zero; spawn the rest.
  threads_.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->cv.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> claimed;
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->cv.wait(lock, [this, seen] {
        return state_->stop || state_->generation != seen;
      });
      if (state_->stop) return;
      seen = state_->generation;
      claimed = state_->batch;
    }
    if (claimed) claimed->work();
  }
}

void ShardPool::run(std::size_t jobs,
                    const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;
  if (workers_ == 1 || jobs == 1) {
    // Sequential path: no pool machinery at all, so worker-count 1 is
    // byte-for-byte today's single-core behavior.
    for (std::size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }

  const auto dispatch = std::make_shared<Batch>();
  dispatch->fn = &fn;
  dispatch->jobs = jobs;
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->batch = dispatch;
    ++state_->generation;
  }
  state_->cv.notify_all();

  dispatch->work();  // the caller pulls shards too

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(dispatch->mutex);
    dispatch->done_cv.wait(
        lock, [&dispatch] { return dispatch->done == dispatch->jobs; });
    error = dispatch->first_error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace shield5g::sim
