// Fixed-capacity single-producer/single-consumer mailbox.
//
// The serving plane's routing fabric (load/serving.h): the caller
// thread partitions the global arrival stream by home shard and pushes
// each registration into the owning worker's mailbox; the worker drains
// it on the far side. One producer, one consumer, bounded storage —
// the classic lock-free ring:
//
//   tail_  written only by the producer (release) after the slot is
//          filled; the consumer acquires it to learn how far it may read.
//   head_  written only by the consumer (release) after the slot is
//          consumed; the producer acquires it to learn how far it may
//          write.
//   ring_  each slot is owned by exactly one side at any instant — the
//          producer up to its release-store of tail_, the consumer after
//          its acquire-load observes that store. The handoff *is* the
//          synchronisation edge; no slot is ever touched concurrently
//          (tests/montecarlo_test.cpp hammers this under TSan).
//
// close() is the producer's end-of-stream marker: after the consumer
// has drained every slot and sees closed(), no further item can arrive.
// Capacity is rounded up to a power of two; try_push on a full ring
// returns false (the producer decides whether to spin, drain its own
// shard, or shed).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/thread_annotations.h"

namespace shield5g::sim {

template <typename T>
class SpscMailbox {
 public:
  explicit SpscMailbox(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    ring_ = std::make_unique<T[]>(cap);
  }

  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. False when the ring is full or already closed
  /// (item untouched either way).
  bool try_push(T item) {
    // closed_ is producer-owned: this is a self-check against protocol
    // misuse, not a synchronisation point.
    if (closed_.load(std::memory_order_relaxed)) return false;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    ring_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: no further pushes will follow. Idempotent.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  /// Consumer side. False when the ring is currently empty — check
  /// drained() to distinguish "empty for now" from end-of-stream.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(ring_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: the stream is over — closed and fully consumed.
  bool drained() const noexcept {
    return closed_.load(std::memory_order_acquire) &&
           head_.load(std::memory_order_relaxed) ==
               tail_.load(std::memory_order_acquire);
  }

  /// Items currently in flight (either side; approximate off-thread).
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

 private:
  // Slot storage: single-writer by the SPSC ownership protocol above
  // (the atomics below carry the inter-thread edges).
  std::unique_ptr<T[]> ring_ SHIELD_THREAD_CONFINED;
  std::size_t mask_ = 0;
  // Both indices are monotonically increasing; (tail - head) is the
  // fill. 64-bit, so wrap-around is not a practical concern.
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer-owned
  std::atomic<bool> closed_{false};                 // producer-owned
};

}  // namespace shield5g::sim
