#include "sim/clock.h"

#include <stdexcept>

namespace shield5g::sim {

void VirtualClock::advance(Nanos delta) {
  const Nanos prev = now_;
  now_ += delta;
  for (auto& [id, fn] : observers_) fn(prev, now_);
}

void VirtualClock::advance_to(Nanos instant) {
  if (instant < now_) {
    throw std::logic_error("VirtualClock::advance_to: time went backwards");
  }
  advance(instant - now_);
}

void VirtualClock::rewind(Nanos instant) {
  if (instant > now_) {
    throw std::logic_error("VirtualClock::rewind: instant in the future");
  }
  now_ = instant;
}

std::size_t VirtualClock::add_observer(Observer fn) {
  observers_.emplace_back(next_id_, std::move(fn));
  return next_id_++;
}

void VirtualClock::remove_observer(std::size_t id) {
  std::erase_if(observers_, [id](const auto& p) { return p.first == id; });
}

}  // namespace shield5g::sim
