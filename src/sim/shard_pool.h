// Deterministic multi-core shard runner.
//
// A shard is one fully independent virtual-time simulation instance —
// its own VirtualClock, Scheduler, deployment and RNG streams, keyed by
// whatever the caller sweeps over (seed, offered rate, isolation mode).
// ShardPool executes N such shards on a fixed set of host worker
// threads and hands every result back in shard-index order, so the
// aggregate is bit-identical to the sequential run regardless of worker
// count, scheduling or interleaving: parallelism moves only the wall
// clock, never the simulated output (DESIGN.md §12).
//
// Worker resolution: an explicit count wins; otherwise the
// SHIELD5G_SHARD_WORKERS environment variable; otherwise
// std::thread::hardware_concurrency(). A count of 1 runs every shard
// inline on the calling thread — exactly the sequential behavior the
// determinism tests diff against.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

namespace shield5g::sim {

/// Resolves a worker count: `requested` if nonzero, else the
/// SHIELD5G_SHARD_WORKERS environment variable (positive integer), else
/// hardware_concurrency. Always returns at least 1.
unsigned shard_workers(unsigned requested = 0) noexcept;

class ShardPool {
 public:
  /// Spawns the fixed worker set (resolved via shard_workers). With one
  /// worker no threads are created and run() stays on the caller.
  explicit ShardPool(unsigned workers = 0);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  unsigned workers() const noexcept { return workers_; }

  /// Executes fn(i) for every i in [0, jobs), blocking until all shards
  /// finish. Shards are claimed dynamically but each index runs exactly
  /// once, start to finish, on a single thread (per-shard state such as
  /// thread-local hot-stage deltas stays coherent). The calling thread
  /// participates in the work. The first exception thrown by a shard is
  /// rethrown here after the batch drains; remaining shards still run.
  void run(std::size_t jobs, const std::function<void(std::size_t)>& fn);

  /// run() with results collected in shard-index order — the merge step
  /// that makes parallel sweeps byte-identical to sequential ones.
  template <typename Fn>
  auto map(std::size_t jobs, Fn fn)
      -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
    std::vector<std::invoke_result_t<Fn, std::size_t>> results(jobs);
    run(jobs, [&results, &fn](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  struct State;
  void worker_loop();
  void work_batch();

  unsigned workers_ = 1;
  std::unique_ptr<State> state_;
  std::vector<std::thread> threads_;
};

}  // namespace shield5g::sim
