#include "sim/scheduler.h"

#include <stdexcept>

#include "common/hot_stage.h"

namespace shield5g::sim {

void Scheduler::at(Nanos when, Task task) {
  if (when < clock_.now()) {
    throw std::logic_error("Scheduler::at: instant in the past");
  }
  queue_.push(Event{when, next_seq_++, std::move(task)});
}

void Scheduler::run() {
  // The scheduler stage times the whole dispatch; nested crypto/codec/
  // bus stages subtract themselves out (exclusive-time semantics), so
  // what is left is queue upkeep plus the engine state machines.
  ScopedStage timer(HotStage::kScheduler);
  while (!queue_.empty()) {
    // Copy out: the task may schedule more events.
    Event ev = queue_.top();
    queue_.pop();
    clock_.advance_to(ev.when);
    ev.task();
  }
}

void Scheduler::run_until(Nanos deadline) {
  ScopedStage timer(HotStage::kScheduler);
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    clock_.advance_to(ev.when);
    ev.task();
  }
  clock_.advance_to(deadline);
}

}  // namespace shield5g::sim
