#include "sim/scheduler.h"

#include <stdexcept>
#include <utility>

#include "common/hot_stage.h"
#include "common/stats.h"

namespace shield5g::sim {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

std::uint32_t Scheduler::acquire_slot(Task task) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(task);
    return slot;
  }
  slots_.push_back(std::move(task));
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::push_heap(Entry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Scheduler::note_pushed() {
  ++pushed_;
  const std::size_t now_pending = pending();
  if (now_pending > peak_) peak_ = now_pending;
}

void Scheduler::at(Nanos when, Task task) {
  if (when < clock_.now()) {
    throw std::logic_error("Scheduler::at: instant in the past");
  }
  const Entry entry{when, next_seq_++, acquire_slot(std::move(task))};
  // Ring when the timestamp extends the tail (it almost always does:
  // arrival schedules arrive sorted, engine continuations are scheduled
  // at now + span while now is monotone); heap otherwise. Both parts
  // stay individually sorted in pop order, so the merge in pop_next()
  // reproduces the global (when, seq) order exactly.
  if (ring_.empty() || !before(entry, ring_.back())) {
    ring_.push_back(entry);
  } else {
    push_heap(entry);
  }
  note_pushed();
}

void Scheduler::reserve(std::size_t events) {
  heap_.reserve(events / kArity + 16);
  ring_.reserve(events + 16);
  slots_.reserve(events + 16);
  free_slots_.reserve(events + 16);
}

Scheduler::Entry Scheduler::pop_next() {
  const bool have_ring = ring_head_ < ring_.size();
  const bool have_heap = !heap_.empty();
  const bool from_ring =
      have_ring && (!have_heap || before(ring_[ring_head_], heap_.front()));
  if (from_ring) {
    const Entry front = ring_[ring_head_++];
    if (ring_head_ == ring_.size()) {
      ring_.clear();  // fully drained: recycle the storage in place
      ring_head_ = 0;
    } else if (ring_head_ >= 4096 && ring_head_ * 2 >= ring_.size()) {
      // Compact once drained entries outnumber live ones, so ring
      // memory tracks peak pending events, not the run's event total.
      // The move cost is <= the pops since the last compaction —
      // amortized O(1) per event.
      ring_.erase(ring_.begin(),
                  ring_.begin() + static_cast<std::ptrdiff_t>(ring_head_));
      ring_head_ = 0;
    }
    ++popped_;
    return front;
  }
  const Entry top = heap_.front();
  // Standard d-ary pop: move the last entry to the root and sift down.
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child =
        first_child + kArity < n ? first_child + kArity : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  ++popped_;
  return top;
}

void Scheduler::publish_counters() {
  if (pushed_ > 0) counter_add("scheduler.events.pushed", pushed_);
  if (popped_ > 0) counter_add("scheduler.events.popped", popped_);
  if (peak_ > 0) counter_max("scheduler.events.peak", peak_);
  pushed_ = 0;
  popped_ = 0;
  // peak_ stays: it is this scheduler's lifetime high-water mark, and
  // counter_max makes re-publishing it idempotent.
}

void Scheduler::run() {
  // The scheduler stage times the whole dispatch; nested crypto/codec/
  // bus stages subtract themselves out (exclusive-time semantics), so
  // what is left is queue upkeep plus the engine state machines.
  ScopedStage timer(HotStage::kScheduler);
  while (!empty()) {
    const Entry ev = pop_next();
    // Move the task out and free its slot before dispatch: the task may
    // schedule more events and immediately reuse the slot.
    Task task = std::move(slots_[ev.slot]);
    slots_[ev.slot] = nullptr;
    free_slots_.push_back(ev.slot);
    clock_.advance_to(ev.when);
    task();
  }
  publish_counters();
}

void Scheduler::run_until(Nanos deadline) {
  ScopedStage timer(HotStage::kScheduler);
  while (!empty()) {
    const bool have_ring = ring_head_ < ring_.size();
    const Nanos next =
        have_ring && (heap_.empty() || before(ring_[ring_head_], heap_.front()))
            ? ring_[ring_head_].when
            : heap_.front().when;
    if (next > deadline) break;
    const Entry ev = pop_next();
    Task task = std::move(slots_[ev.slot]);
    slots_[ev.slot] = nullptr;
    free_slots_.push_back(ev.slot);
    clock_.advance_to(ev.when);
    task();
  }
  clock_.advance_to(deadline);
  publish_counters();
}

}  // namespace shield5g::sim
