// Minimal JSON value / parser / serializer.
//
// The paper's P-AKA modules expose REST endpoints whose payloads are JSON
// documents carrying the Table I parameters (hex-encoded). This module is
// the in-repo replacement for the nlohmann/jsoncpp dependency the OAI
// code uses: objects, arrays, strings, numbers, booleans and null, with
// strict parsing and deterministic (sorted-key) serialization.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace shield5g {
class SecretBytes;
class SecretView;
}  // namespace shield5g

namespace shield5g::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(std::uint64_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  /// Tainted key material never serializes into a JSON document
  /// directly: go through SecretBytes::declassify + nf::hex_field.
  Value(const shield5g::SecretBytes&) = delete;
  Value(const shield5g::SecretView&) = delete;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  /// Typed accessors throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field lookup; throws if not an object or key missing.
  const Value& at(const std::string& key) const;
  /// Returns nullopt when the value is not an object or lacks the key.
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  bool has(const std::string& key) const;

  /// Mutating object index (creates the key).
  Value& operator[](const std::string& key);

  /// Compact serialization with sorted object keys.
  std::string dump() const;

  bool operator==(const Value& other) const = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Strict parser. Throws std::runtime_error with a position-annotated
/// message on malformed input.
Value parse(const std::string& text);

}  // namespace shield5g::json
