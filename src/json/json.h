// Minimal JSON value / parser / serializer.
//
// The paper's P-AKA modules expose REST endpoints whose payloads are JSON
// documents carrying the Table I parameters (hex-encoded). This module is
// the in-repo replacement for the nlohmann/jsoncpp dependency the OAI
// code uses: objects, arrays, strings, numbers, booleans and null, with
// strict parsing and deterministic (insertion-ordered) serialization.
//
// Objects are a flat vector of key/value pairs rather than a std::map:
// SBI bodies carry a handful of keys, so linear probing beats the
// rb-tree's node allocations and pointer chasing on the hot path, and
// documents round-trip with their field order intact. Inserting an
// existing key overwrites the value but keeps the original position.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace shield5g {
class SecretBytes;
class SecretView;
}  // namespace shield5g

namespace shield5g::json {

class Value;
using Array = std::vector<Value>;

/// Insertion-ordered object: the subset of the std::map interface the
/// codebase uses, over contiguous storage. Equality is order-sensitive
/// (two objects with the same pairs in different order differ, exactly
/// like the serialized documents they produce).
class Object {
 public:
  using value_type = std::pair<std::string, Value>;
  using storage_type = std::vector<value_type>;
  using iterator = storage_type::iterator;
  using const_iterator = storage_type::const_iterator;

  Object() = default;

  iterator begin();
  iterator end();
  const_iterator begin() const;
  const_iterator end() const;

  bool empty() const;
  std::size_t size() const;
  void reserve(std::size_t n);

  iterator find(std::string_view key);
  const_iterator find(std::string_view key) const;
  std::size_t count(std::string_view key) const;

  /// Returns the value for `key`, appending a null entry when absent.
  /// Lookups take string_view so literal keys never materialize a
  /// temporary std::string.
  Value& operator[](std::string_view key);
  /// Lookup-or-append that moves the key on insertion (the parser's
  /// path; a std::string&& operator[] overload would be ambiguous with
  /// the string_view one for literal arguments).
  Value& insert_move(std::string&& key);

  bool operator==(const Object& other) const;

 private:
  storage_type items_;
};

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(std::uint64_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  /// Tainted key material never serializes into a JSON document
  /// directly: go through SecretBytes::declassify + nf::hex_field.
  Value(const shield5g::SecretBytes&) = delete;
  Value(const shield5g::SecretView&) = delete;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  /// Typed accessors throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field lookup; throws if not an object or key missing.
  const Value& at(std::string_view key) const;
  /// Returns nullopt when the value is not an object or lacks the key.
  std::optional<std::string> get_string(std::string_view key) const;
  std::optional<std::int64_t> get_int(std::string_view key) const;
  bool has(std::string_view key) const;

  /// Mutating object index (creates the key).
  Value& operator[](std::string_view key);

  /// Compact serialization, object fields in insertion order.
  std::string dump() const;

  bool operator==(const Value& other) const = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

// Object's members live below Value so the vector's element type is
// complete where the bodies instantiate it.

inline Object::iterator Object::begin() { return items_.begin(); }
inline Object::iterator Object::end() { return items_.end(); }
inline Object::const_iterator Object::begin() const { return items_.begin(); }
inline Object::const_iterator Object::end() const { return items_.end(); }

inline bool Object::empty() const { return items_.empty(); }
inline std::size_t Object::size() const { return items_.size(); }
inline void Object::reserve(std::size_t n) { items_.reserve(n); }

inline Object::iterator Object::find(std::string_view key) {
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->first == key) return it;
  }
  return items_.end();
}

inline Object::const_iterator Object::find(std::string_view key) const {
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->first == key) return it;
  }
  return items_.end();
}

inline std::size_t Object::count(std::string_view key) const {
  return find(key) == items_.end() ? 0 : 1;
}

inline Value& Object::operator[](std::string_view key) {
  const auto it = find(key);
  if (it != items_.end()) return it->second;
  items_.emplace_back(std::string(key), Value());
  return items_.back().second;
}

inline Value& Object::insert_move(std::string&& key) {
  const auto it = find(key);
  if (it != items_.end()) return it->second;
  items_.emplace_back(std::move(key), Value());
  return items_.back().second;
}

inline bool Object::operator==(const Object& other) const {
  return items_ == other.items_;
}

/// Strict parser. Throws std::runtime_error with a position-annotated
/// message on malformed input. Object field order is preserved.
Value parse(std::string_view text);

}  // namespace shield5g::json
