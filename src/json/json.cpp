#include "json/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/hot_stage.h"

namespace shield5g::json {

bool Value::as_bool() const {
  if (!is_bool()) throw std::runtime_error("json: not a bool");
  return std::get<bool>(data_);
}

double Value::as_number() const {
  if (!is_number()) throw std::runtime_error("json: not a number");
  return std::get<double>(data_);
}

std::int64_t Value::as_int() const {
  const double d = as_number();
  return static_cast<std::int64_t>(d);
}

const std::string& Value::as_string() const {
  if (!is_string()) throw std::runtime_error("json: not a string");
  return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<Object>(data_);
}

Array& Value::as_array() {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<Array>(data_);
}

Object& Value::as_object() {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<Object>(data_);
}

const Value& Value::at(std::string_view key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("json: missing key " + std::string(key));
  }
  return it->second;
}

std::optional<std::string> Value::get_string(std::string_view key) const {
  if (!is_object()) return std::nullopt;
  const auto& obj = std::get<Object>(data_);
  const auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_string()) return std::nullopt;
  return it->second.as_string();
}

std::optional<std::int64_t> Value::get_int(std::string_view key) const {
  if (!is_object()) return std::nullopt;
  const auto& obj = std::get<Object>(data_);
  const auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_number()) return std::nullopt;
  return it->second.as_int();
}

bool Value::has(std::string_view key) const {
  return is_object() && std::get<Object>(data_).count(key) > 0;
}

Value& Value::operator[](std::string_view key) {
  if (is_null()) data_ = Object{};
  return as_object()[key];
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Value& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    const double d = v.as_number();
    if (std::floor(d) == d && std::abs(d) < 9.0e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(d));
      out += buf;
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out += buf;
    }
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const auto& e : v.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_value(e, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(k, out);
      out.push_back(':');
      dump_value(e, out);
    }
    out.push_back('}');
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("json parse error: unexpected end");
    }
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_word("true"); return Value(true);
      case 'f': expect_word("false"); return Value(false);
      case 'n': expect_word("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    obj.reserve(8);  // SBI bodies: typically 3-7 fields
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_move(std::move(key)) = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode the code point as UTF-8 (BMP only; surrogate pairs
            // are not needed for the protocol payloads here).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    // std::from_chars converts straight from the input span — no
    // substring allocation, and stricter than stod (no "+5", no hex).
    double d = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || ptr != last) fail("bad number");
    return Value(d);
  }

  const std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::dump() const {
  ScopedStage timer(HotStage::kCodec);
  std::string out;
  out.reserve(256);  // covers every SBI body in the repo without regrowth
  dump_value(*this, out);
  return out;
}

Value parse(std::string_view text) {
  ScopedStage timer(HotStage::kCodec);
  return Parser(text).parse_document();
}

}  // namespace shield5g::json
