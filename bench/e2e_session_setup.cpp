// E2E — End-to-end UE session setup across deployment modes
// (paper §V-B4): registration + PDU session establishment, measured at
// the UE, for monolithic, container-isolated and SGX-isolated AKA.
#include "bench/bench_util.h"
#include "slice/slice.h"

using namespace shield5g;

namespace {

Samples run_mode(slice::IsolationMode mode, int regs) {
  slice::SliceConfig cfg;
  cfg.mode = mode;
  cfg.subscriber_count = static_cast<std::uint32_t>(regs + 1);
  slice::Slice s(cfg);
  s.create();
  s.register_subscriber(0, true);  // absorb cold paths
  Samples setup;
  for (int i = 1; i <= regs; ++i) {
    const auto result =
        s.register_subscriber(static_cast<std::uint32_t>(i), true);
    if (!result.session_up) {
      std::fprintf(stderr, "registration %d failed!\n", i);
      continue;
    }
    setup.add(sim::to_ms(result.setup_time));
  }
  return setup;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = bench::iterations(argc, argv, 200);
  bench::heading("E2E: UE session setup latency (registration + PDU session)");
  std::printf("  %d registrations per mode via gNBSIM\n", n);

  const Samples mono = run_mode(slice::IsolationMode::kMonolithic, n);
  const Samples cont = run_mode(slice::IsolationMode::kContainer, n);
  const Samples sgx = run_mode(slice::IsolationMode::kSgx, n);

  bench::print_dist_row("monolithic AKA", mono, "ms");
  bench::print_dist_row("container P-AKA", cont, "ms");
  bench::print_dist_row("SGX P-AKA", sgx, "ms");

  bench::subheading("overhead attribution");
  bench::print_kv("container vs monolithic delta",
                  cont.mean() - mono.mean(), "ms");
  bench::print_kv("SGX vs container delta (cumulative SGX delay)",
                  sgx.mean() - cont.mean(), "ms");
  bench::print_kv("SGX share of the SGX-mode setup",
                  (sgx.mean() - cont.mean()) / sgx.mean() * 100.0, "%");
  bench::paper_row("end-to-end setup", "62.38 ms");
  bench::paper_row("container vs monolithic", "negligible difference");
  bench::paper_row("SGX delay", "3.48 ms = 5.58% of the setup");
  return 0;
}
