// ABLATION — horizontal scaling of the enclave worker pool
// (paper §V-B7: "since our design is microservice-based, it inherently
// supports horizontal scaling ... operators can scale the enclave worker
// nodes and SGX-capable host pools on demand").
//
// Deploys 1..4 eUDM replicas and reports the costs that grow with the
// pool (slice creation time, committed EPC) against the capacity gained
// (authentication vectors per second at the measured stable response
// time), while per-request latency stays flat.
#include "bench/bench_util.h"
#include "slice/slice.h"

using namespace shield5g;

int main(int argc, char** argv) {
  const int regs = bench::iterations(argc, argv, 40);
  bench::heading("ABLATION: eUDM replica pool scaling (paper §V-B7)");
  std::printf("  %d registrations per configuration\n\n", regs);
  std::printf("  %-9s %12s %10s %12s %14s %14s\n", "replicas",
              "creation(s)", "EPC(GB)", "R_S p50(us)", "per-replica n",
              "est. AV/s");

  for (std::uint32_t replicas = 1; replicas <= 4; ++replicas) {
    slice::SliceConfig cfg;
    cfg.mode = slice::IsolationMode::kSgx;
    cfg.eudm_replicas = replicas;
    cfg.subscriber_count = static_cast<std::uint32_t>(regs + replicas);
    slice::Slice s(cfg);
    const auto creation = s.create();

    // Warm every replica's cold path (round-robin guarantees coverage).
    for (std::uint32_t i = 0; i < replicas; ++i) {
      s.register_subscriber(i, false);
    }
    Samples lt;
    std::uint64_t served_min = ~0ULL, served_max = 0;
    for (auto& replica : s.eudm_replicas()) replica->server().reset_stats();
    for (int i = 0; i < regs; ++i) {
      s.register_subscriber(static_cast<std::uint32_t>(replicas + i),
                            false);
    }
    for (auto& replica : s.eudm_replicas()) {
      for (double v : replica->server().lt_us().values()) lt.add(v);
      served_min = std::min(served_min, replica->server().requests_served());
      served_max = std::max(served_max, replica->server().requests_served());
    }
    // Capacity estimate: each replica is single-threaded, so the pool
    // sustains replicas / R_S vectors per second.
    const double rs_us = lt.median() + 1'280;  // + client/bridge path
    const double av_per_s = replicas * 1e6 / rs_us;
    std::printf("  %-9u %12.1f %10.1f %12.2f %7llu..%-6llu %14.0f\n",
                replicas, sim::to_s(creation.total),
                static_cast<double>(s.machine().epc().used_bytes()) /
                    static_cast<double>(1ULL << 30),
                lt.median(),
                static_cast<unsigned long long>(served_min),
                static_cast<unsigned long long>(served_max), av_per_s);
  }
  bench::print_note(
      "creation time and EPC commitment grow linearly with the pool; "
      "per-request latency is flat; round-robin spreads load evenly "
      "(per-replica n). Capacity scales with the worker count.");
  return 0;
}
