// Shared helpers for the experiment harnesses.
//
// Each bench binary regenerates one table or figure of the paper and
// prints (a) the measured series and (b) the paper's reported values for
// side-by-side comparison. Iteration counts default to paper-faithful
// values but can be reduced via argv[1] for quick runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.h"

namespace shield5g::bench {

/// Parses the iteration count: argv[1] if given, else `def`.
inline int iterations(int argc, char** argv, int def) {
  if (argc > 1) {
    const int n = std::atoi(argv[1]);
    if (n > 0) return n;
  }
  return def;
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("--- %s ---\n", title.c_str());
}

/// Box-plot-style row: median [p25, p75] (min..max), n.
inline void print_dist_row(const std::string& label, const Samples& s,
                           const char* unit) {
  const Summary sum = Summary::of(s);
  std::printf("  %-22s p50=%9.2f %-3s iqr=[%9.2f, %9.2f] "
              "range=[%9.2f, %9.2f] n=%zu\n",
              label.c_str(), sum.median, unit, sum.p25, sum.p75, sum.min,
              sum.max, sum.count);
}

inline void print_kv(const std::string& key, double value,
                     const char* unit) {
  std::printf("  %-38s %10.3f %s\n", key.c_str(), value, unit);
}

inline void print_note(const std::string& note) {
  std::printf("  note: %s\n", note.c_str());
}

inline void paper_row(const std::string& what, const std::string& value) {
  std::printf("  paper: %-30s %s\n", what.c_str(), value.c_str());
}

}  // namespace shield5g::bench
