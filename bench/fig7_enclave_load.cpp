// FIG7 — Enclave load time for the P-AKA modules (paper Fig. 7).
//
// Repeatedly deploys each GSC-built module into a fresh enclave (preheat
// enabled, 512 MB EPC, 4 threads — the paper's configuration) and
// reports the load-time distribution in minutes. Paper: all three
// modules take close to a minute (~0.955-0.99 min), with eUDM the
// slowest (largest application layer).
#include "bench/bench_util.h"
#include "net/bus.h"
#include "paka/aka_amf.h"
#include "paka/aka_ausf.h"
#include "paka/aka_udm.h"
#include "sgx/machine.h"

using namespace shield5g;

namespace {

template <typename Service>
Samples measure_loads(const std::string& name, int iterations) {
  Samples minutes;
  for (int i = 0; i < iterations; ++i) {
    sim::VirtualClock clock;
    sgx::Machine machine(clock, {}, 0x716e + static_cast<std::uint64_t>(i));
    net::Bus bus(clock, {}, 0xb05 + static_cast<std::uint64_t>(i));
    paka::PakaOptions opts;  // defaults: SGX, 512 MB, 4 threads, preheat
    Service service(machine, bus, opts, name);
    const sim::Nanos load = service.deploy();
    minutes.add(sim::to_s(load) / 60.0);
  }
  return minutes;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = bench::iterations(argc, argv, 50);
  bench::heading("FIG 7: enclave load time of the P-AKA modules");
  std::printf("  config: sgx.preheat_enclave=true, 512MB EPC, "
              "4 threads, %d deployments per module\n", n);

  const Samples eudm = measure_loads<paka::EudmAkaService>("eudm-aka", n);
  const Samples eausf = measure_loads<paka::EausfAkaService>("eausf-aka", n);
  const Samples eamf = measure_loads<paka::EamfAkaService>("eamf-aka", n);

  bench::print_dist_row("eUDM  load", eudm, "min");
  bench::print_dist_row("eAUSF load", eausf, "min");
  bench::print_dist_row("eAMF  load", eamf, "min");
  bench::paper_row("enclave load time",
                   "~0.955-0.99 min for all three modules, eUDM slowest");
  bench::print_note(
      "cost composition: EADD+EEXTEND of all enclave pages + trusted-file "
      "verification + several hundred init OCALLs + preheat page faults");
  return 0;
}
