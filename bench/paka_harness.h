// Standalone P-AKA module harness used by the figure/table benches that
// exercise a module directly (the way its parent VNF does), without the
// full slice around it.
#pragma once

#include <memory>
#include <string>

#include "json/json.h"
#include "net/bus.h"
#include "nf/sbi.h"
#include "paka/aka_amf.h"
#include "paka/aka_ausf.h"
#include "paka/aka_udm.h"
#include "sgx/machine.h"

namespace shield5g::bench {

/// One module deployed on its own simulated host.
template <typename Service>
struct ModuleBench {
  sim::VirtualClock clock;
  sgx::Machine machine;
  net::Bus bus;
  std::unique_ptr<Service> service;

  ModuleBench(paka::PakaOptions options, std::uint64_t seed = 1)
      : machine(clock, {}, seed ^ 0x5a5aULL), bus(clock, {}, seed) {
    service = std::make_unique<Service>(machine, bus, options);
  }

  sim::Nanos deploy() {
    const sim::Nanos load = service->deploy();
    if constexpr (std::is_same_v<Service, paka::EudmAkaService>) {
      service->provision_key(nf::Supi{"001010000000001"}, Bytes(16, 0x4b));
    }
    return load;
  }

  net::Bus::Exchange request(const net::HttpRequest& req) {
    return bus.request("parent-vnf", service->name(), req);
  }
};

inline net::HttpRequest eudm_request() {
  json::Object body;
  body["supi"] = "001010000000001";
  body["opc"] = nf::hex_field(Bytes(16, 0x09));
  body["rand"] = nf::hex_field(Bytes(16, 0x25));
  body["sqn"] = nf::hex_field(Bytes{0, 0, 0, 0, 0x10, 0});
  body["amfId"] = nf::hex_field(Bytes{0x80, 0x00});
  body["snn"] = "5G:mnc001.mcc001.3gppnetwork.org";
  return nf::json_post("/paka/v1/generate-av", json::Value(std::move(body)));
}

inline net::HttpRequest eausf_request() {
  json::Object body;
  body["rand"] = nf::hex_field(Bytes(16, 0x25));
  body["xresStar"] = nf::hex_field(Bytes(16, 0x31));
  body["snn"] = "5G:mnc001.mcc001.3gppnetwork.org";
  body["kausf"] = nf::hex_field(Bytes(32, 0x77));
  return nf::json_post("/paka/v1/derive-se", json::Value(std::move(body)));
}

inline net::HttpRequest eamf_request() {
  json::Object body;
  body["kseaf"] = nf::hex_field(Bytes(32, 0x55));
  body["supi"] = "001010000000001";
  return nf::json_post("/paka/v1/derive-kamf", json::Value(std::move(body)));
}

}  // namespace shield5g::bench
