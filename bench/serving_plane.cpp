// SERVING PLANE — SUPI-sharded live serving + columnar 1M-subscriber UDR.
//
// Two claims, both enforced here rather than just reported:
//
//   1. Capacity: provisioning 1,000,000 subscribers into the columnar
//      SubscriberStore (population-mode slice, the store as the only
//      resident copy) stays under a pinned peak-RSS ceiling, measured
//      with getrusage(RUSAGE_SELF).ru_maxrss immediately after the
//      provision phase — maxrss is monotone, so the snapshot taken
//      before churn is exactly the provisioning peak.
//   2. Scaling: the sharded serving plane (load/serving.h) at 2/4/8
//      workers produces a merged digest byte-identical to the 1-worker
//      run, and >=1.7x registrations/s at 2 workers when the host has
//      >=2 cores (recorded, not enforced, on smaller hosts — the
//      digest check runs everywhere).
//
//   $ ./serving_plane [--smoke] [--shards 1,2,4,8] [out.json]
//
// Writes BENCH_serving.json (schema shield5g.bench.serving_plane.v1),
// re-parsed and schema-checked before exit, including the RSS ceiling
// verdict — CI's serve-smoke stage trusts this file's self-validation.
#include <sys/resource.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "json/json.h"
#include "load/serving.h"
#include "nf/subscriber_store.h"
#include "slice/slice.h"

using namespace shield5g;

namespace {

constexpr const char* kSchemaId = "shield5g.bench.serving_plane.v1";
constexpr double kSpeedupBarAt2 = 1.7;
constexpr std::uint32_t kProvisionCount = 1'000'000;
/// Peak-RSS ceiling for the 1M provision, in KiB. Measured ~90 MB on
/// the reference container (columnar store ~78 MB + process baseline);
/// pinned with ~75% headroom so an accidental fat-map regression (which
/// costs >3x) trips it immediately while allocator noise never does.
constexpr long kRssCeilingKb = 160 * 1024;

struct Options {
  bool smoke = false;
  std::vector<unsigned> shard_counts = {1, 2, 4, 8};
  std::string out_path = "BENCH_serving.json";
};

Options parse_args(int argc, char** argv) {
  Options opt;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      opt.shard_counts.clear();
      const char* p = argv[++i];
      while (*p != '\0') {
        char* end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v <= 0) break;
        opt.shard_counts.push_back(static_cast<unsigned>(v));
        p = (*end == ',') ? end + 1 : end;
      }
      if (opt.shard_counts.empty()) {
        std::fprintf(stderr, "serving_plane: bad --shards list\n");
        std::exit(2);
      }
    } else if (positional++ == 0) {
      opt.out_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--shards 1,2,4,8] [out.json]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak RSS of this process in KiB (Linux ru_maxrss unit). Monotone:
/// call order against the allocation being measured is what matters.
long peak_rss_kb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
  return usage.ru_maxrss;
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

struct ProvisionResult {
  std::uint32_t subscribers = 0;
  double wall_ms = 0.0;
  double lookups_per_s = 0.0;
  std::size_t store_bytes = 0;
  long rss_before_kb = 0;
  long rss_after_kb = 0;
  bool rss_ok = false;
};

/// The capacity claim: a full population-mode slice provision (the UDR
/// columnar store is the only resident subscriber copy), then a row()
/// sweep so the measured footprint is also the footprint being served.
ProvisionResult run_provision() {
  ProvisionResult out;
  out.subscribers = kProvisionCount;
  out.rss_before_kb = peak_rss_kb();

  {
    slice::SliceConfig cfg;
    cfg.mode = slice::IsolationMode::kMonolithic;  // pure store footprint
    cfg.seed = 0x1013A9ULL;
    cfg.population.resize(kProvisionCount);
    std::iota(cfg.population.begin(), cfg.population.end(), 0u);
    cfg.subscriber_count = kProvisionCount;

    const double t0 = now_ms();
    slice::Slice slice(cfg);
    slice.create();
    out.wall_ms = now_ms() - t0;
    out.store_bytes = slice.udr().store().bytes_reserved();

    // Lookup sweep while everything is resident: every provisioned SUPI
    // must resolve, at columnar (two cache line) cost.
    const double l0 = now_ms();
    std::uint64_t hits = 0;
    char supi[24];
    for (std::uint32_t i = 0; i < kProvisionCount; ++i) {
      std::snprintf(supi, sizeof(supi), "00101%010u", 100000000u + i);
      if (slice.udr().store().row(supi) != nf::SubscriberStore::kNoRow) {
        ++hits;
      }
    }
    const double lookup_ms = now_ms() - l0;
    if (hits != kProvisionCount) {
      std::fprintf(stderr, "serving_plane: lost rows: %" PRIu64 "/%u\n",
                   hits, kProvisionCount);
      std::exit(1);
    }
    if (lookup_ms > 0) out.lookups_per_s = 1000.0 * hits / lookup_ms;

    out.rss_after_kb = peak_rss_kb();  // provisioning peak: store alive
  }  // slice (and store) freed before the churn phase

  out.rss_ok = out.rss_after_kb > 0 && out.rss_after_kb <= kRssCeilingKb;
  return out;
}

struct ServeRun {
  unsigned shards = 0;
  double wall_ms = 0.0;
  double regs_per_s = 0.0;
  double speedup = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t backpressure = 0;
  bool match = false;
};

bool validate(const std::string& text) {
  const auto fail = [](const char* what) {
    std::fprintf(stderr, "serving_plane: schema validation failed: %s\n",
                 what);
    return false;
  };
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serving_plane: emitted JSON does not parse: %s\n",
                 e.what());
    return false;
  }
  if (!doc.is_object()) return fail("root is not an object");
  const json::Object& root = doc.as_object();
  const auto it_schema = root.find("schema");
  if (it_schema == root.end() || !it_schema->second.is_string() ||
      it_schema->second.as_string() != kSchemaId) {
    return fail("schema id missing or wrong");
  }
  for (const char* key : {"cores", "slots", "ue_count"}) {
    const auto it = root.find(key);
    if (it == root.end() || !it->second.is_number()) return fail(key);
  }
  for (const char* key : {"smoke", "deterministic", "speedup_checked"}) {
    const auto it = root.find(key);
    if (it == root.end() || !it->second.is_bool()) return fail(key);
  }
  const auto it_prov = root.find("provision");
  if (it_prov == root.end() || !it_prov->second.is_object()) {
    return fail("provision");
  }
  const json::Object& prov = it_prov->second.as_object();
  for (const char* key :
       {"subscribers", "wall_ms", "lookups_per_s", "store_bytes",
        "rss_before_kb", "rss_after_kb", "rss_ceiling_kb"}) {
    const auto it = prov.find(key);
    if (it == prov.end() || !it->second.is_number()) return fail(key);
  }
  const auto it_ok = prov.find("rss_ok");
  if (it_ok == prov.end() || !it_ok->second.is_bool()) return fail("rss_ok");
  const auto it_runs = root.find("runs");
  if (it_runs == root.end() || !it_runs->second.is_array() ||
      it_runs->second.as_array().empty()) {
    return fail("runs");
  }
  for (const json::Value& entry : it_runs->second.as_array()) {
    if (!entry.is_object()) return fail("run entry");
    const json::Object& r = entry.as_object();
    for (const char* key :
         {"shards", "wall_ms", "regs_per_s", "speedup", "backpressure"}) {
      const auto it = r.find(key);
      if (it == r.end() || !it->second.is_number()) return fail(key);
    }
    const auto it_d = r.find("digest");
    if (it_d == r.end() || !it_d->second.is_string()) return fail("digest");
    const auto it_m = r.find("digest_matches_sequential");
    if (it_m == r.end() || !it_m->second.is_bool()) {
      return fail("digest_matches_sequential");
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const unsigned cores = std::thread::hardware_concurrency();

  bench::heading("SERVING PLANE: columnar 1M provision + sharded serving");

  // ---- Phase 1: capacity. Runs in smoke too — it IS the CI pin. -----
  const ProvisionResult prov = run_provision();
  std::printf("  provision: %u subscribers in %.0f ms, store %.1f MB "
              "(%.1f B/subscriber), %.0f lookups/s\n",
              prov.subscribers, prov.wall_ms,
              prov.store_bytes / (1024.0 * 1024.0),
              static_cast<double>(prov.store_bytes) / prov.subscribers,
              prov.lookups_per_s);
  std::printf("  peak RSS: %.1f MB before, %.1f MB after (ceiling %.0f MB) "
              "%s\n",
              prov.rss_before_kb / 1024.0, prov.rss_after_kb / 1024.0,
              kRssCeilingKb / 1024.0, prov.rss_ok ? "OK" : "OVER CEILING");
  if (!prov.rss_ok) {
    std::fprintf(stderr,
                 "serving_plane: 1M provision peak RSS %ld KiB exceeds the "
                 "%ld KiB ceiling\n",
                 prov.rss_after_kb, kRssCeilingKb);
    return 1;
  }

  // ---- Phase 2: scaling. One partition, widths 1..8. ----------------
  load::ServingConfig cfg;
  cfg.slice.mode = slice::IsolationMode::kContainer;
  cfg.slice.seed = 0x5eedULL;
  cfg.ue_count = opt.smoke ? 64 : 512;
  cfg.arrivals.kind = load::ArrivalKind::kPoisson;
  cfg.arrivals.rate_per_s = 1600.0;
  cfg.seed = 0x5e47eULL;
  std::printf("  serving: %u UEs over %u slots, host cores=%u%s\n",
              cfg.ue_count, cfg.slots, cores, opt.smoke ? " (smoke)" : "");

  std::uint64_t seq_digest = 0;
  std::vector<std::string> seq_lines;
  double seq_wall_ms = 0.0;
  bool deterministic = true;
  std::vector<ServeRun> runs;
  for (const unsigned shards : opt.shard_counts) {
    const load::ServingReport report = load::run_serving(cfg, shards);
    ServeRun run;
    run.shards = report.shards;
    run.wall_ms = report.wall_ms;
    run.regs_per_s = report.regs_per_s;
    run.digest = report.digest;
    run.backpressure = report.backpressure;
    if (runs.empty()) {
      seq_digest = report.digest;
      seq_lines = report.digest_lines;
      seq_wall_ms = report.wall_ms;
    }
    run.match = run.digest == seq_digest;
    run.speedup = run.wall_ms > 0.0 ? seq_wall_ms / run.wall_ms : 0.0;
    std::printf("  shards=%-3u %8.1f ms  %8.0f regs/s  speedup %.2fx  "
                "digest %s  %s\n",
                run.shards, run.wall_ms, run.regs_per_s, run.speedup,
                hex64(run.digest).c_str(),
                run.match ? "== sequential" : "DIVERGED");
    if (!run.match) {
      deterministic = false;
      const std::size_t n = seq_lines.size() < report.digest_lines.size()
                                ? seq_lines.size()
                                : report.digest_lines.size();
      for (std::size_t i = 0; i < n; ++i) {
        if (seq_lines[i] != report.digest_lines[i]) {
          std::fprintf(stderr, "  slot %zu:\n    seq: %s\n    par: %s\n", i,
                       seq_lines[i].c_str(), report.digest_lines[i].c_str());
        }
      }
    }
    runs.push_back(run);
  }

  const bool speedup_checked = cores >= 2;
  bool speedup_ok = true;
  for (const ServeRun& run : runs) {
    if (run.shards != 2) continue;
    if (speedup_checked && run.speedup < kSpeedupBarAt2) {
      speedup_ok = false;
      std::fprintf(stderr,
                   "serving_plane: speedup at 2 shards %.2fx below the "
                   "%.1fx bar (cores=%u)\n",
                   run.speedup, kSpeedupBarAt2, cores);
    } else if (!speedup_checked) {
      bench::print_note("single-core host: scaling recorded but the speedup "
                        "bar is not enforced here");
    }
  }

  json::Object root;
  root["schema"] = json::Value(kSchemaId);
  root["smoke"] = json::Value(opt.smoke);
  root["cores"] = json::Value(static_cast<std::uint64_t>(cores));
  root["slots"] = json::Value(static_cast<std::uint64_t>(cfg.slots));
  root["ue_count"] = json::Value(static_cast<std::uint64_t>(cfg.ue_count));
  root["deterministic"] = json::Value(deterministic);
  root["speedup_checked"] = json::Value(speedup_checked);
  json::Object prov_entry;
  prov_entry["subscribers"] =
      json::Value(static_cast<std::uint64_t>(prov.subscribers));
  prov_entry["wall_ms"] = json::Value(prov.wall_ms);
  prov_entry["lookups_per_s"] = json::Value(prov.lookups_per_s);
  prov_entry["store_bytes"] =
      json::Value(static_cast<std::uint64_t>(prov.store_bytes));
  prov_entry["rss_before_kb"] =
      json::Value(static_cast<std::uint64_t>(prov.rss_before_kb));
  prov_entry["rss_after_kb"] =
      json::Value(static_cast<std::uint64_t>(prov.rss_after_kb));
  prov_entry["rss_ceiling_kb"] =
      json::Value(static_cast<std::uint64_t>(kRssCeilingKb));
  prov_entry["rss_ok"] = json::Value(prov.rss_ok);
  root["provision"] = json::Value(std::move(prov_entry));
  json::Array run_entries;
  for (const ServeRun& run : runs) {
    json::Object entry;
    entry["shards"] = json::Value(static_cast<std::uint64_t>(run.shards));
    entry["wall_ms"] = json::Value(run.wall_ms);
    entry["regs_per_s"] = json::Value(run.regs_per_s);
    entry["speedup"] = json::Value(run.speedup);
    entry["backpressure"] =
        json::Value(static_cast<std::uint64_t>(run.backpressure));
    entry["digest"] = json::Value(hex64(run.digest));
    entry["digest_matches_sequential"] = json::Value(run.match);
    run_entries.emplace_back(std::move(entry));
  }
  root["runs"] = json::Value(std::move(run_entries));

  const std::string text = json::Value(std::move(root)).dump();
  if (!validate(text)) return 1;
  std::ofstream out(opt.out_path, std::ios::trunc);
  out << text << '\n';
  if (!out) {
    std::fprintf(stderr, "serving_plane: cannot write %s\n",
                 opt.out_path.c_str());
    return 1;
  }
  std::printf("  wrote %s\n", opt.out_path.c_str());

  if (!deterministic) {
    std::fprintf(stderr,
                 "serving_plane: sharded serving diverged from sequential\n");
    return 1;
  }
  if (!speedup_ok) return 1;
  return 0;
}
