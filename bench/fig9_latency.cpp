// FIG9 — Functional (L_F) and total (L_T) latency of the three P-AKA
// modules under container vs SGX isolation (paper Fig. 9, feeding the
// L_F/L_T columns of Table II).
//
// Measured in situ: full UE registrations run through the slice, so the
// modules see exactly the traffic their parent VNFs generate.
#include "bench/bench_util.h"
#include "slice/slice.h"

using namespace shield5g;

namespace {

struct ModuleSeries {
  Samples lf, lt;
};

struct ModeResult {
  ModuleSeries eudm, eausf, eamf;
};

ModeResult run_mode(slice::IsolationMode mode, int registrations) {
  slice::SliceConfig cfg;
  cfg.mode = mode;
  cfg.subscriber_count = static_cast<std::uint32_t>(registrations + 1);
  slice::Slice s(cfg);
  s.create();
  s.register_subscriber(0, true);  // cold paths out of the way
  for (auto* module :
       {static_cast<paka::PakaService*>(s.eudm()),
        static_cast<paka::PakaService*>(s.eausf()),
        static_cast<paka::PakaService*>(s.eamf())}) {
    module->server().reset_stats();
  }
  for (int i = 1; i <= registrations; ++i) {
    s.register_subscriber(static_cast<std::uint32_t>(i), true);
  }
  ModeResult result;
  result.eudm = {s.eudm()->server().lf_us(), s.eudm()->server().lt_us()};
  result.eausf = {s.eausf()->server().lf_us(), s.eausf()->server().lt_us()};
  result.eamf = {s.eamf()->server().lf_us(), s.eamf()->server().lt_us()};
  return result;
}

void print_mode(const char* label, const ModeResult& r) {
  bench::subheading(label);
  bench::print_dist_row("eUDM  L_F", r.eudm.lf, "us");
  bench::print_dist_row("eAUSF L_F", r.eausf.lf, "us");
  bench::print_dist_row("eAMF  L_F", r.eamf.lf, "us");
  bench::print_dist_row("eUDM  L_T", r.eudm.lt, "us");
  bench::print_dist_row("eAUSF L_T", r.eausf.lt, "us");
  bench::print_dist_row("eAMF  L_T", r.eamf.lt, "us");
}

}  // namespace

int main(int argc, char** argv) {
  const int n = bench::iterations(argc, argv, 500);
  bench::heading("FIG 9: functional and total latency of the P-AKA modules");
  std::printf("  %d UE registrations per isolation mode\n", n);

  const ModeResult container = run_mode(slice::IsolationMode::kContainer, n);
  const ModeResult sgx = run_mode(slice::IsolationMode::kSgx, n);
  print_mode("Container isolation", container);
  print_mode("SGX isolation", sgx);

  bench::subheading("SGX / container ratios (medians)");
  bench::print_kv("eUDM  L_F ratio",
                  sgx.eudm.lf.median() / container.eudm.lf.median(), "x");
  bench::print_kv("eAUSF L_F ratio",
                  sgx.eausf.lf.median() / container.eausf.lf.median(), "x");
  bench::print_kv("eAMF  L_F ratio",
                  sgx.eamf.lf.median() / container.eamf.lf.median(), "x");
  bench::print_kv("eUDM  L_T ratio",
                  sgx.eudm.lt.median() / container.eudm.lt.median(), "x");
  bench::print_kv("eAUSF L_T ratio",
                  sgx.eausf.lt.median() / container.eausf.lt.median(), "x");
  bench::print_kv("eAMF  L_T ratio",
                  sgx.eamf.lt.median() / container.eamf.lt.median(), "x");
  bench::paper_row("L_F ratios", "1.2 (eUDM), 1.3 (eAUSF), 1.5 (eAMF)");
  bench::paper_row("L_T ratios", "1.86, 2.15, 2.43");
  bench::paper_row("ordering", "eUDM exchanges the most bytes and has the "
                   "highest latency, then eAUSF, then eAMF");
  return 0;
}
