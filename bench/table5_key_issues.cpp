// TAB5 — Key Issues summary (paper Table V): which of the 3GPP TR 33.848
// virtualisation key issues HMEE resolves, regenerated from the property
// mapping engine rather than transcribed.
#include <cstdio>

#include "bench/bench_util.h"
#include "ki/key_issues.h"

using namespace shield5g;

int main(int, char**) {
  bench::heading("TABLE V: key-issue summary (TR 33.848 vs HMEE)");
  std::printf("\n  %-4s %-45s %-10s %s\n", "KI#", "Description",
              "3GPP-HMEE", "Solution");
  for (const auto& row : ki::generate_table()) {
    std::printf("  %-4d %-45s %-10s %s\n", row.ki, row.description.c_str(),
                row.threegpp_hmee ? "yes" : "-",
                ki::verdict_symbol(row.verdict));
  }

  const auto summary = ki::summarize(ki::generate_table());
  bench::subheading("summary");
  bench::print_kv("KIs where 3GPP itself recommends HMEE",
                  summary.threegpp_marked, "");
  bench::print_kv("additional KIs mitigated (paper's contribution)",
                  summary.additional_beyond_3gpp, "");
  bench::print_kv("fully resolved", summary.full, "");
  bench::print_kv("partially resolved", summary.partial, "");
  bench::paper_row("3GPP-marked KIs", "6, 7, 15, 25");
  bench::paper_row("full solutions beyond 3GPP", "2, 13, 27");
  bench::paper_row("partial solutions", "5, 11, 12, 20, 21, 26");

  bench::subheading("HMEE properties relied upon per KI");
  for (const auto& issue : ki::catalogue()) {
    std::printf("  KI %-3d:", issue.number);
    for (const auto property : issue.relevant) {
      std::printf(" %s", ki::property_name(property));
    }
    std::printf("\n");
  }
  return 0;
}
