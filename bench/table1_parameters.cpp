// TAB1 — 5G-AKA functions and parameters loaded into the enclaves
// (paper Table I).
//
// Regenerates the enclave input/output parameter inventory by running
// one registration's worth of module requests and measuring the actual
// cryptographic parameter sizes, alongside the JSON transport sizes.
#include <cstring>

#include "bench/bench_util.h"
#include "bench/paka_harness.h"
#include "nf/aka_core.h"

using namespace shield5g;

namespace {

struct Param {
  const char* name;
  std::size_t bytes;
  std::size_t paper_bytes;
};

void print_params(const char* direction, const Param* params,
                  std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    std::printf("  %-8s %-8s %3zu bytes (paper: %zu)  %s\n", direction,
                params[i].name, params[i].bytes, params[i].paper_bytes,
                params[i].bytes == params[i].paper_bytes ? "match"
                                                         : "MISMATCH");
  }
}

}  // namespace

int main(int, char**) {
  bench::heading("TABLE I: P-AKA enclave parameters and derivations");

  // Run the real computations once so every size below is measured from
  // live data, not transcribed.
  Rng rng(7);
  const Bytes k = rng.bytes(16);
  const Bytes opc = rng.bytes(16);
  const Bytes rand = rng.bytes(16);
  const Bytes sqn = rng.bytes(6);
  const Bytes amf_id = {0x80, 0x00};
  const std::string snn = "5G:mnc001.mcc001.3gppnetwork.org";
  const nf::HeAv av = nf::generate_he_av(k, opc, rand, sqn, amf_id, snn);
  const nf::SeDerivation se = nf::derive_se(rand, av.xres_star, av.kausf,
                                            snn);
  const SecretBytes kamf = nf::derive_kamf_for(se.kseaf, "001010000000001");

  bench::subheading("eUDM P-AKA (derive/execute: f1, f2345, KAUSF, AUTN)");
  const Param udm_in[] = {{"OPc", opc.size(), 16},
                          {"RAND", rand.size(), 16},
                          {"SQN", sqn.size(), 6},
                          {"AMFid", amf_id.size(), 2}};
  const Param udm_out[] = {{"RAND", av.rand.size(), 16},
                           {"XRES*", av.xres_star.size(), 16},
                           {"KAUSF", av.kausf.size(), 32},
                           {"AUTN", av.autn.size(), 16}};
  print_params("input", udm_in, 4);
  print_params("output", udm_out, 4);

  bench::subheading("eAUSF P-AKA (derive/execute: KSEAF, HXRES*)");
  const Param ausf_in[] = {{"RAND", rand.size(), 16},
                           {"XRES*", av.xres_star.size(), 16},
                           {"SNN", 2, 2},  // paper encodes an SNN index
                           {"KAUSF", av.kausf.size(), 32}};
  const Param ausf_out[] = {{"KSEAF", se.kseaf.size(), 32},
                            {"HXRES*", se.hxres_star.size(), 8}};
  print_params("input", ausf_in, 4);
  print_params("output", ausf_out, 2);
  bench::print_note(
      "SNN travels as the full serving-network-name string on the wire "
      "(" + std::to_string(snn.size()) + " bytes); the paper counts a "
      "2-byte identifier");

  bench::subheading("eAMF P-AKA (derive/execute: KAMF)");
  const Param amf_in[] = {{"KSEAF", se.kseaf.size(), 32}};
  const Param amf_out[] = {{"KAMF", kamf.size(), 32}};
  print_params("input", amf_in, 1);
  print_params("output", amf_out, 1);

  bench::subheading("JSON transport payloads (measured on the wire)");
  std::printf("  eUDM  request %4zu B, eAUSF request %4zu B, "
              "eAMF request %4zu B\n",
              bench::eudm_request().body.size(),
              bench::eausf_request().body.size(),
              bench::eamf_request().body.size());
  bench::print_note(
      "eUDM moves the most parameter bytes (40 in / 80 out), then eAUSF "
      "(66/40), then eAMF (32/32) - the ordering behind Fig. 9");
  return 0;
}
