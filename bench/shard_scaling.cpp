// SHARD SCALING — wall-clock scaling of the deterministic shard runner.
//
// Runs one fixed registration sweep (modes x rates x seeds) repeatedly:
// first sequentially (the workers=1 inline path, no pool machinery),
// then at each requested worker count. For every run it reports sweep
// wall time, aggregate registrations per wall-clock second, and the
// order-sensitive FNV digest of everything deterministic in the
// results. The determinism contract is enforced here, not just
// documented: any digest that differs from the sequential reference
// fails the bench with a per-case diff.
//
//   $ ./shard_scaling [--smoke] [--workers 1,2,4,8] [--digest prefix] [out.json]
//
// --smoke shrinks the sweep for CI. --digest writes the per-case digest
// lines to <prefix>_seq.txt and <prefix>_w<N>.txt so CI can diff them
// byte-for-byte. Writes BENCH_scaling.json (schema
// shield5g.bench.shard_scaling.v1), re-parsed and schema-checked before
// exit. Speedup is recorded but only *checked* against the >=1.7x at 2
// workers bar when the host actually has >=2 cores — the digest check
// runs everywhere (a single core still interleaves shard threads).
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "json/json.h"
#include "load/sweep.h"
#include "sim/shard_pool.h"
#include "slice/slice.h"

using namespace shield5g;

namespace {

constexpr const char* kSchemaId = "shield5g.bench.shard_scaling.v1";
constexpr double kSpeedupBarAt2 = 1.7;

struct Options {
  bool smoke = false;
  std::vector<unsigned> worker_counts = {1, 2, 4, 8};
  std::string digest_prefix;  // empty = no digest files
  std::string out_path = "BENCH_scaling.json";
};

struct RunResult {
  unsigned workers = 0;
  double wall_ms = 0.0;
  double regs_per_s = 0.0;
  double speedup = 0.0;  // sequential wall / this wall
  std::uint64_t digest = 0;
  bool match = false;  // digest == sequential reference digest
};

std::vector<unsigned> parse_worker_list(const char* arg) {
  std::vector<unsigned> counts;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p || v <= 0) break;
    counts.push_back(static_cast<unsigned>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  if (counts.empty()) {
    std::fprintf(stderr, "shard_scaling: bad --workers list '%s'\n", arg);
    std::exit(2);
  }
  return counts;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      opt.worker_counts = parse_worker_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--digest") == 0 && i + 1 < argc) {
      opt.digest_prefix = argv[++i];
    } else if (positional++ == 0) {
      opt.out_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--workers 1,2,4] [--digest prefix] "
                   "[out.json]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

/// The canonical scaling workload: every isolation mode at a low and a
/// saturating rate, several seeds each — enough independent shards to
/// keep 8 workers busy, with a digest surface that covers trace hashes,
/// queue states and shed counts.
std::vector<load::SweepCase> make_cases(bool smoke) {
  const std::uint32_t ues = smoke ? 40 : 200;
  const std::size_t seeds = smoke ? 2 : 4;
  const double rates[] = {200, 1600};
  const slice::IsolationMode modes[] = {slice::IsolationMode::kMonolithic,
                                        slice::IsolationMode::kContainer,
                                        slice::IsolationMode::kSgx};
  std::vector<load::SweepCase> cases;
  for (const slice::IsolationMode mode : modes) {
    for (const double rate : rates) {
      for (std::size_t s = 0; s < seeds; ++s) {
        load::SweepCase c;
        char label[80];
        std::snprintf(label, sizeof(label), "%s rate=%.0f seed=%zu",
                      slice::isolation_mode_name(mode), rate, s);
        c.label = label;
        c.slice.mode = mode;
        c.slice.subscriber_count = ues;
        c.slice.seed = 0x5CA1EULL + s;
        c.load.ue_count = ues;
        c.load.arrivals.kind = load::ArrivalKind::kPoisson;
        c.load.arrivals.rate_per_s = rate;
        c.load.seed = 0xD1CEULL + s;
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t total_registered(const std::vector<load::SweepResult>& r) {
  std::uint64_t total = 0;
  for (const load::SweepResult& s : r) total += s.report.registered;
  return total;
}

bool write_lines(const std::string& path, const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << '\n';
  if (!out) {
    std::fprintf(stderr, "shard_scaling: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

/// Prints which cases diverged so a determinism break is debuggable
/// from the CI log alone.
void print_divergence(const std::vector<std::string>& want,
                      const std::vector<std::string>& got) {
  const std::size_t n = want.size() < got.size() ? want.size() : got.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (want[i] != got[i]) {
      std::fprintf(stderr, "  case %zu:\n    seq: %s\n    par: %s\n", i,
                   want[i].c_str(), got[i].c_str());
    }
  }
  if (want.size() != got.size()) {
    std::fprintf(stderr, "  case count differs: seq=%zu par=%zu\n",
                 want.size(), got.size());
  }
}

bool validate(const std::string& text) {
  const auto fail = [](const char* what) {
    std::fprintf(stderr, "shard_scaling: schema validation failed: %s\n",
                 what);
    return false;
  };
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard_scaling: emitted JSON does not parse: %s\n",
                 e.what());
    return false;
  }
  if (!doc.is_object()) return fail("root is not an object");
  const json::Object& root = doc.as_object();
  const auto it_schema = root.find("schema");
  if (it_schema == root.end() || !it_schema->second.is_string() ||
      it_schema->second.as_string() != kSchemaId) {
    return fail("schema id missing or wrong");
  }
  for (const char* key : {"cores", "cases", "sequential_wall_ms"}) {
    const auto it = root.find(key);
    if (it == root.end() || !it->second.is_number()) return fail(key);
  }
  const auto it_digest = root.find("sequential_digest");
  if (it_digest == root.end() || !it_digest->second.is_string()) {
    return fail("sequential_digest");
  }
  for (const char* key : {"smoke", "deterministic", "speedup_checked"}) {
    const auto it = root.find(key);
    if (it == root.end() || !it->second.is_bool()) return fail(key);
  }
  const auto it_runs = root.find("runs");
  if (it_runs == root.end() || !it_runs->second.is_array() ||
      it_runs->second.as_array().empty()) {
    return fail("runs");
  }
  for (const json::Value& entry : it_runs->second.as_array()) {
    if (!entry.is_object()) return fail("run entry");
    const json::Object& r = entry.as_object();
    for (const char* key : {"workers", "wall_ms", "regs_per_s", "speedup"}) {
      const auto it = r.find(key);
      if (it == r.end() || !it->second.is_number()) return fail(key);
    }
    const auto it_d = r.find("digest");
    if (it_d == r.end() || !it_d->second.is_string()) return fail("digest");
    const auto it_m = r.find("digest_matches_sequential");
    if (it_m == r.end() || !it_m->second.is_bool()) {
      return fail("digest_matches_sequential");
    }
  }
  return true;
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const unsigned cores = std::thread::hardware_concurrency();
  const std::vector<load::SweepCase> cases = make_cases(opt.smoke);

  bench::heading("SHARD SCALING: deterministic sweep at 1..N workers");
  std::printf("  %zu independent cases, host cores=%u%s\n", cases.size(),
              cores, opt.smoke ? " (smoke)" : "");

  // Sequential reference: the workers=1 inline path, timed like the rest.
  const double seq_t0 = now_ms();
  const std::vector<load::SweepResult> reference = load::run_sweep(cases, 1);
  const double seq_wall_ms = now_ms() - seq_t0;
  const std::uint64_t seq_digest = load::sweep_digest(reference);
  const std::vector<std::string> seq_lines = load::sweep_digest_lines(reference);
  const std::uint64_t regs = total_registered(reference);
  std::printf("  sequential: %.1f ms, %" PRIu64 " registrations, digest %s\n",
              seq_wall_ms, regs, hex64(seq_digest).c_str());
  if (!opt.digest_prefix.empty() &&
      !write_lines(opt.digest_prefix + "_seq.txt", seq_lines)) {
    return 1;
  }

  bool deterministic = true;
  std::vector<RunResult> runs;
  for (const unsigned workers : opt.worker_counts) {
    RunResult run;
    run.workers = workers;
    const double t0 = now_ms();
    const std::vector<load::SweepResult> results = load::run_sweep(cases, workers);
    run.wall_ms = now_ms() - t0;
    run.digest = load::sweep_digest(results);
    run.match = run.digest == seq_digest;
    run.speedup = run.wall_ms > 0.0 ? seq_wall_ms / run.wall_ms : 0.0;
    run.regs_per_s = run.wall_ms > 0.0
                         ? static_cast<double>(total_registered(results)) /
                               (run.wall_ms / 1e3)
                         : 0.0;
    std::printf("  workers=%-3u %8.1f ms  %8.0f regs/s  speedup %.2fx  "
                "digest %s  %s\n",
                workers, run.wall_ms, run.regs_per_s, run.speedup,
                hex64(run.digest).c_str(),
                run.match ? "== sequential" : "DIVERGED");
    const std::vector<std::string> lines = load::sweep_digest_lines(results);
    if (!run.match) {
      deterministic = false;
      print_divergence(seq_lines, lines);
    }
    if (!opt.digest_prefix.empty() &&
        !write_lines(opt.digest_prefix + "_w" + std::to_string(workers) +
                         ".txt",
                     lines)) {
      return 1;
    }
    runs.push_back(run);
  }

  // The >=1.7x bar only means something when the host can actually run
  // two shards at once; on a single-core container we record the cores
  // and the measured (meaningless) speedup instead of failing.
  const bool speedup_checked = cores >= 2;
  bool speedup_ok = true;
  for (const RunResult& run : runs) {
    if (run.workers != 2) continue;
    if (speedup_checked && run.speedup < kSpeedupBarAt2) {
      speedup_ok = false;
      std::fprintf(stderr,
                   "shard_scaling: speedup at 2 workers %.2fx below the "
                   "%.1fx bar (cores=%u)\n",
                   run.speedup, kSpeedupBarAt2, cores);
    } else if (!speedup_checked) {
      bench::print_note("single-core host: scaling numbers recorded but the "
                        "speedup bar is not enforced here");
    }
  }

  json::Object root;
  root["schema"] = json::Value(kSchemaId);
  root["smoke"] = json::Value(opt.smoke);
  root["cores"] = json::Value(static_cast<std::uint64_t>(cores));
  root["cases"] = json::Value(static_cast<std::uint64_t>(cases.size()));
  root["sequential_wall_ms"] = json::Value(seq_wall_ms);
  root["sequential_digest"] = json::Value(hex64(seq_digest));
  root["deterministic"] = json::Value(deterministic);
  root["speedup_checked"] = json::Value(speedup_checked);
  json::Array run_entries;
  for (const RunResult& run : runs) {
    json::Object entry;
    entry["workers"] = json::Value(static_cast<std::uint64_t>(run.workers));
    entry["wall_ms"] = json::Value(run.wall_ms);
    entry["regs_per_s"] = json::Value(run.regs_per_s);
    entry["speedup"] = json::Value(run.speedup);
    entry["digest"] = json::Value(hex64(run.digest));
    entry["digest_matches_sequential"] = json::Value(run.match);
    run_entries.emplace_back(std::move(entry));
  }
  root["runs"] = json::Value(std::move(run_entries));

  const std::string text = json::Value(std::move(root)).dump();
  if (!validate(text)) return 1;
  std::ofstream out(opt.out_path, std::ios::trunc);
  out << text << '\n';
  if (!out) {
    std::fprintf(stderr, "shard_scaling: cannot write %s\n",
                 opt.out_path.c_str());
    return 1;
  }
  std::printf("  wrote %s\n", opt.out_path.c_str());

  if (!deterministic) {
    std::fprintf(stderr,
                 "shard_scaling: parallel sweep diverged from sequential\n");
    return 1;
  }
  if (!speedup_ok) return 1;
  return 0;
}
