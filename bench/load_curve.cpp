// LOAD CURVE — latency vs offered load per isolation mode (beyond the
// paper: its experiments register one UE at a time, so enclave thread
// limits and queueing never show; this bench drives the concurrent
// engine open-loop and locates the saturation knee).
//
// Sweeps the offered registration rate for the container deployment and
// for SGX at two TCS budgets, running a seed-sweep Monte Carlo per
// point. All (mode x rate x seed) cases are one flat shard sweep
// (load/sweep.h): SHIELD5G_SHARD_WORKERS host workers execute the
// independent sims in parallel, and by the determinism contract the
// numbers are bit-identical at any worker count. Expected shape: all
// modes flat near the unloaded setup latency at low rate; the SGX
// module (1 enclave worker at the paper's max_threads=4) saturates
// earliest — its achieved rate plateaus and setup latency grows with
// the backlog; raising the TCS budget moves the knee right.
//
// Past saturation the AMF ingress sheds: the NGAP-edge drop count and
// the per-point shed probability are reported on the curve and in the
// emitted JSON (the drop itself is still silent — no retransmission
// model yet, see ROADMAP).
//
//   $ ./load_curve [ues_per_run] [out.json]
//
// Writes BENCH_load_curve.json (schema shield5g.bench.load_curve.v1),
// re-parsed and schema-checked before the process exits 0.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "json/json.h"
#include "load/sweep.h"
#include "sim/shard_pool.h"
#include "slice/slice.h"

using namespace shield5g;

namespace {

constexpr const char* kSchemaId = "shield5g.bench.load_curve.v1";
constexpr std::size_t kSeeds = 4;

struct ModeConfig {
  const char* label;
  slice::IsolationMode mode;
  std::uint32_t sgx_threads;  // PakaOptions.max_threads (SGX rows)
};

struct Point {
  double offered_per_s = 0;
  double setup_p50_ms = 0;
  double setup_p95_ms = 0;
  double achieved_per_s = 0;
  double queue_share = 0;  // total queue wait / total setup time
  std::uint64_t shed = 0;
  double shed_probability = 0;  // shed / (shed + admitted), all queues
};

load::SweepCase make_case(const ModeConfig& mode, double rate,
                          std::uint32_t ues, std::uint64_t seed) {
  load::SweepCase c;
  char label[96];
  std::snprintf(label, sizeof(label), "%s rate=%.0f seed=%llu", mode.label,
                rate, static_cast<unsigned long long>(seed));
  c.label = label;
  c.slice.mode = mode.mode;
  c.slice.subscriber_count = ues;
  c.slice.seed = 0x51C3ULL ^ (seed * 0x9e3779b97f4a7c15ULL);
  c.slice.paka.max_threads = mode.sgx_threads;
  c.load.ue_count = ues;
  c.load.arrivals.kind = load::ArrivalKind::kPoisson;
  c.load.arrivals.rate_per_s = rate;
  c.load.seed = 0x10adULL + seed;
  return c;
}

Point aggregate_point(double rate,
                      const std::vector<const load::SweepResult*>& seeds) {
  Point point;
  point.offered_per_s = rate;
  std::uint64_t admitted = 0;
  for (const load::SweepResult* r : seeds) {
    const load::LoadReport& report = r->report;
    point.setup_p50_ms += report.setup_ms.median() / kSeeds;
    point.setup_p95_ms += report.setup_ms.percentile(95.0) / kSeeds;
    point.achieved_per_s += report.achieved_rate_per_s / kSeeds;
    point.shed += r->shed;
    sim::Nanos queue_total = 0;
    for (const load::QueueSnapshot& q : r->queues) {
      queue_total += q.total_wait;
      admitted += q.admitted;
    }
    double setup_total_ms = 0;
    for (double v : report.setup_ms.values()) setup_total_ms += v;
    if (setup_total_ms > 0) {
      point.queue_share += sim::to_ms(queue_total) / setup_total_ms / kSeeds;
    }
  }
  if (point.shed + admitted > 0) {
    point.shed_probability = static_cast<double>(point.shed) /
                             static_cast<double>(point.shed + admitted);
  }
  return point;
}

/// Re-parses the emitted document and checks the schema the scale CI
/// tooling depends on.
bool validate(const std::string& text) {
  const auto fail = [](const char* what) {
    std::fprintf(stderr, "load_curve: schema validation failed: %s\n", what);
    return false;
  };
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "load_curve: emitted JSON does not parse: %s\n",
                 e.what());
    return false;
  }
  if (!doc.is_object()) return fail("root is not an object");
  const json::Object& root = doc.as_object();
  const auto it_schema = root.find("schema");
  if (it_schema == root.end() || !it_schema->second.is_string() ||
      it_schema->second.as_string() != kSchemaId) {
    return fail("schema id missing or wrong");
  }
  for (const char* key : {"ue_count", "seeds", "workers"}) {
    const auto it = root.find(key);
    if (it == root.end() || !it->second.is_number()) return fail(key);
  }
  const auto it_modes = root.find("modes");
  if (it_modes == root.end() || !it_modes->second.is_array() ||
      it_modes->second.as_array().empty()) {
    return fail("modes");
  }
  for (const json::Value& mode : it_modes->second.as_array()) {
    if (!mode.is_object()) return fail("mode entry");
    const json::Object& m = mode.as_object();
    const auto it_label = m.find("mode");
    if (it_label == m.end() || !it_label->second.is_string()) {
      return fail("mode label");
    }
    const auto it_points = m.find("points");
    if (it_points == m.end() || !it_points->second.is_array() ||
        it_points->second.as_array().empty()) {
      return fail("points");
    }
    for (const json::Value& entry : it_points->second.as_array()) {
      if (!entry.is_object()) return fail("point entry");
      const json::Object& p = entry.as_object();
      for (const char* key :
           {"offered_per_s", "setup_p50_ms", "setup_p95_ms", "achieved_per_s",
            "queue_share", "shed", "shed_probability"}) {
        const auto it = p.find(key);
        if (it == p.end() || !it->second.is_number()) return fail(key);
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t ues = static_cast<std::uint32_t>(
      bench::iterations(argc, argv, 200));
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_load_curve.json";
  const unsigned workers = sim::shard_workers();
  bench::heading("LOAD CURVE: latency vs offered registration load");
  std::printf("  %u UEs per run, Poisson arrivals, %zu-seed Monte Carlo per "
              "point, %u shard worker%s\n",
              ues, kSeeds, workers, workers == 1 ? "" : "s");

  const std::vector<double> rates = {50, 100, 200, 400, 800, 1600, 3200};
  const ModeConfig modes[] = {
      {"container (4 workers/module)", slice::IsolationMode::kContainer, 4},
      {"SGX, max_threads=4 (1 enclave worker)", slice::IsolationMode::kSgx, 4},
      {"SGX, max_threads=8 (5 enclave workers)", slice::IsolationMode::kSgx,
       8},
  };

  // One flat sweep over every (mode, rate, seed): independent sims, so
  // the shard pool fans them all out at once instead of per point.
  std::vector<load::SweepCase> cases;
  for (const ModeConfig& mode : modes) {
    for (double rate : rates) {
      for (std::size_t s = 0; s < kSeeds; ++s) {
        cases.push_back(
            make_case(mode, rate, ues, static_cast<std::uint64_t>(s + 1)));
      }
    }
  }
  const std::vector<load::SweepResult> results = load::run_sweep(cases);

  json::Array mode_entries;
  std::size_t cursor = 0;
  for (const ModeConfig& mode : modes) {
    bench::subheading(mode.label);
    std::printf("  %10s %14s %14s %14s %10s %6s %9s\n", "offered/s",
                "setup p50 ms", "setup p95 ms", "achieved/s", "queue frac",
                "shed", "shed prob");
    double knee = 0;
    double base_p50 = 0;
    json::Array points;
    for (double rate : rates) {
      std::vector<const load::SweepResult*> seeds;
      for (std::size_t s = 0; s < kSeeds; ++s) {
        seeds.push_back(&results[cursor++]);
      }
      const Point point = aggregate_point(rate, seeds);
      if (base_p50 == 0) base_p50 = point.setup_p50_ms;
      if (knee == 0 && point.setup_p50_ms > 2.0 * base_p50) knee = rate;
      std::printf("  %10.0f %14.2f %14.2f %14.0f %10.2f %6llu %9.4f\n", rate,
                  point.setup_p50_ms, point.setup_p95_ms, point.achieved_per_s,
                  point.queue_share,
                  static_cast<unsigned long long>(point.shed),
                  point.shed_probability);
      json::Object entry;
      entry["offered_per_s"] = json::Value(point.offered_per_s);
      entry["setup_p50_ms"] = json::Value(point.setup_p50_ms);
      entry["setup_p95_ms"] = json::Value(point.setup_p95_ms);
      entry["achieved_per_s"] = json::Value(point.achieved_per_s);
      entry["queue_share"] = json::Value(point.queue_share);
      entry["shed"] = json::Value(point.shed);
      entry["shed_probability"] = json::Value(point.shed_probability);
      points.emplace_back(std::move(entry));
    }
    if (knee > 0) {
      std::printf("  saturation knee (p50 > 2x unloaded): %.0f/s\n", knee);
    } else {
      std::printf("  no saturation knee within the swept range\n");
    }
    json::Object mode_entry;
    mode_entry["mode"] = json::Value(mode.label);
    mode_entry["points"] = json::Value(std::move(points));
    mode_entries.emplace_back(std::move(mode_entry));
  }

  json::Object root;
  root["schema"] = json::Value(kSchemaId);
  root["ue_count"] = json::Value(static_cast<std::uint64_t>(ues));
  root["seeds"] = json::Value(static_cast<std::uint64_t>(kSeeds));
  root["workers"] = json::Value(static_cast<std::uint64_t>(workers));
  root["modes"] = json::Value(std::move(mode_entries));

  const std::string text = json::Value(std::move(root)).dump();
  if (!validate(text)) return 1;
  std::ofstream out(out_path, std::ios::trunc);
  out << text << '\n';
  if (!out) {
    std::fprintf(stderr, "load_curve: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("  wrote %s\n", out_path.c_str());

  bench::print_note("SGX at the paper's TCS budget saturates earliest; "
                    "raising sgx.max_threads moves the knee toward the "
                    "container curve (the scaling axis Fig. 8 could not "
                    "show with one UE in flight). Sheds at the NGAP edge "
                    "are counted per point, not retransmitted.");
  return 0;
}
