// LOAD CURVE — latency vs offered load per isolation mode (beyond the
// paper: its experiments register one UE at a time, so enclave thread
// limits and queueing never show; this bench drives the concurrent
// engine open-loop and locates the saturation knee).
//
// Sweeps the offered registration rate for the container deployment and
// for SGX at two TCS budgets, running a seed-sweep Monte Carlo (real
// host threads across independent single-threaded sims) per point.
// Expected shape: all modes flat near the unloaded setup latency at low
// rate; the SGX module (1 enclave worker at the paper's max_threads=4)
// saturates earliest — its achieved rate plateaus and setup latency
// grows with the backlog; raising the TCS budget moves the knee right.
//
//   $ ./load_curve [ues_per_run]
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "load/generator.h"
#include "load/montecarlo.h"
#include "slice/slice.h"

using namespace shield5g;

namespace {

struct ModeConfig {
  const char* label;
  slice::IsolationMode mode;
  std::uint32_t sgx_threads;  // PakaOptions.max_threads (SGX rows)
};

struct Point {
  double setup_p50_ms = 0;
  double setup_p95_ms = 0;
  double achieved_per_s = 0;
  double queue_share = 0;  // total queue wait / total setup time
  std::uint32_t shed = 0;
};

Point run_point(const ModeConfig& mode, double rate, std::uint32_t ues,
                std::uint64_t seed) {
  slice::SliceConfig config;
  config.mode = mode.mode;
  config.subscriber_count = ues;
  config.seed = 0x51C3ULL ^ (seed * 0x9e3779b97f4a7c15ULL);
  config.paka.max_threads = mode.sgx_threads;
  slice::Slice slice(config);
  slice.create();

  load::LoadConfig load_cfg;
  load_cfg.ue_count = ues;
  load_cfg.arrivals.kind = load::ArrivalKind::kPoisson;
  load_cfg.arrivals.rate_per_s = rate;
  load_cfg.seed = 0x10adULL + seed;
  load::LoadGenerator generator;
  const load::LoadReport report = generator.run(slice, load_cfg);

  Point point;
  point.setup_p50_ms = report.setup_ms.median();
  point.setup_p95_ms = report.setup_ms.percentile(95.0);
  point.achieved_per_s = report.achieved_rate_per_s;
  sim::Nanos queue_total = 0;
  for (const load::QueueSnapshot& q : load::queue_snapshots(slice)) {
    queue_total += q.total_wait;
    point.shed += static_cast<std::uint32_t>(q.rejected);
  }
  double setup_total_ms = 0;
  for (double v : report.setup_ms.values()) setup_total_ms += v;
  if (setup_total_ms > 0) {
    point.queue_share = sim::to_ms(queue_total) / setup_total_ms;
  }
  return point;
}

void run_mode(const ModeConfig& mode, std::uint32_t ues,
              const std::vector<double>& rates) {
  constexpr std::size_t kSeeds = 4;
  bench::subheading(mode.label);
  std::printf("  %10s %14s %14s %14s %10s %6s\n", "offered/s", "setup p50 ms",
              "setup p95 ms", "achieved/s", "queue frac", "shed");

  double knee = 0;
  double base_p50 = 0;
  for (double rate : rates) {
    // Monte Carlo over seeds: independent sims on real host threads.
    const auto points = load::monte_carlo(kSeeds, [&](std::size_t s) {
      return run_point(mode, rate, ues, static_cast<std::uint64_t>(s + 1));
    });
    Point mean;
    for (const Point& p : points) {
      mean.setup_p50_ms += p.setup_p50_ms / kSeeds;
      mean.setup_p95_ms += p.setup_p95_ms / kSeeds;
      mean.achieved_per_s += p.achieved_per_s / kSeeds;
      mean.queue_share += p.queue_share / kSeeds;
      mean.shed += p.shed;
    }
    if (base_p50 == 0) base_p50 = mean.setup_p50_ms;
    if (knee == 0 && mean.setup_p50_ms > 2.0 * base_p50) knee = rate;
    std::printf("  %10.0f %14.2f %14.2f %14.0f %10.2f %6u\n", rate,
                mean.setup_p50_ms, mean.setup_p95_ms, mean.achieved_per_s,
                mean.queue_share, mean.shed);
  }
  if (knee > 0) {
    std::printf("  saturation knee (p50 > 2x unloaded): %.0f/s\n", knee);
  } else {
    std::printf("  no saturation knee within the swept range\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t ues = static_cast<std::uint32_t>(
      bench::iterations(argc, argv, 200));
  bench::heading("LOAD CURVE: latency vs offered registration load");
  std::printf("  %u UEs per run, Poisson arrivals, 4-seed Monte Carlo per "
              "point\n", ues);

  const std::vector<double> rates = {50, 100, 200, 400, 800, 1600, 3200};
  const ModeConfig modes[] = {
      {"container (4 workers/module)", slice::IsolationMode::kContainer, 4},
      {"SGX, max_threads=4 (1 enclave worker)", slice::IsolationMode::kSgx, 4},
      {"SGX, max_threads=8 (5 enclave workers)", slice::IsolationMode::kSgx,
       8},
  };
  for (const ModeConfig& mode : modes) run_mode(mode, ues, rates);

  bench::print_note("SGX at the paper's TCS budget saturates earliest; "
                    "raising sgx.max_threads moves the knee toward the "
                    "container curve (the scaling axis Fig. 8 could not "
                    "show with one UE in flight).");
  return 0;
}
