// Wall-clock registration throughput harness.
//
// Unlike every other bench in this directory, which reports *virtual*
// time (the paper's metric), this one measures how fast the harness
// itself executes: end-to-end UE registrations are driven through the
// open-loop engine and timed with the host's steady clock. The output
// is registrations per wall-clock second plus a per-stage breakdown
// (crypto / codec / bus / scheduler) from the hot-stage probes, per
// isolation mode.
//
// All (mode x repeat) runs go through load::run_sweep, so they fan out
// across SHIELD5G_SHARD_WORKERS host threads. Stage attribution uses
// the per-shard hot-stage deltas captured on the worker that ran each
// case (buckets are thread-local), so the breakdown stays exact with
// shards in flight. For uncontended per-run wall numbers on a busy or
// small host, pin SHIELD5G_SHARD_WORKERS=1 — CI smoke does.
//
//   $ ./throughput [--smoke] [ue_count] [offered_load_per_s] [repeats] [out.json]
//
// Defaults: 600 UEs, 2000/s Poisson arrivals, 3 repeats, writing
// BENCH_throughput.json in the working directory. --smoke shrinks the
// run for CI (60 UEs, 1 repeat). Each repeat builds a fresh slice; the
// reported rate per mode is the median across repeats so a noisy host
// does not dominate. The emitted JSON is re-parsed and schema-checked
// before the process exits 0 — a malformed or incomplete report fails
// the bench.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/buffer_pool.h"
#include "common/hot_stage.h"
#include "common/stats.h"
#include "crypto/cpu_dispatch.h"
#include "crypto/op_count.h"
#include "crypto/x25519_batch.h"
#include "json/json.h"
#include "load/sweep.h"
#include "sim/shard_pool.h"
#include "slice/slice.h"

using namespace shield5g;

// ---------------------------------------------------------------------
// Global allocation counting: every scalar/array operator new bumps a
// relaxed atomic, so the bench can report heap allocations per
// registration. CI pins a ceiling on the number — the zero-copy wire
// path (pooled records, interned headers, id-keyed bus tables) is what
// keeps it flat as payloads grow.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

constexpr const char* kSchemaId = "shield5g.bench.throughput.v2";

constexpr HotStage kStages[] = {HotStage::kCrypto, HotStage::kCodec,
                                HotStage::kBus, HotStage::kScheduler};

struct ModeResult {
  const char* mode = "";
  std::uint32_t registered = 0;
  std::uint32_t failed = 0;
  std::uint32_t failed_shed = 0;
  std::uint32_t failed_error = 0;
  std::uint64_t fastpath_hits = 0;
  double elapsed_ms_median = 0.0;
  double regs_per_s = 0.0;
  std::uint64_t stage_ns[kHotStageCount] = {};
};

struct Options {
  std::uint32_t ue_count = 600;
  double rate_per_s = 2000.0;
  int repeats = 3;
  std::string out_path = "BENCH_throughput.json";
  bool smoke = false;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
      opt.ue_count = 60;
      opt.rate_per_s = 1000.0;
      opt.repeats = 1;
      continue;
    }
    switch (positional++) {
      case 0: opt.ue_count = static_cast<std::uint32_t>(std::atoi(argv[i])); break;
      case 1: opt.rate_per_s = std::atof(argv[i]); break;
      case 2: opt.repeats = std::atoi(argv[i]); break;
      case 3: opt.out_path = argv[i]; break;
      default:
        std::fprintf(stderr,
                     "usage: %s [--smoke] [ue_count] [rate_per_s] [repeats] "
                     "[out.json]\n",
                     argv[0]);
        std::exit(2);
    }
  }
  if (opt.ue_count == 0 || opt.rate_per_s <= 0.0 || opt.repeats < 1) {
    std::fprintf(stderr, "throughput: ue_count, rate and repeats must be > 0\n");
    std::exit(2);
  }
  return opt;
}

/// Folds one mode's repeats (a contiguous run of sweep results) into
/// the reported medians. Wall time and stage deltas come from the
/// per-case measurements taken on whichever worker ran the case.
ModeResult fold_mode(slice::IsolationMode mode,
                     const load::SweepResult* repeats, int count) {
  ModeResult result;
  result.mode = slice::isolation_mode_name(mode);
  Samples elapsed_ms;
  Samples rate;
  for (int rep = 0; rep < count; ++rep) {
    const load::SweepResult& r = repeats[rep];
    // Virtual-time outcomes are deterministic across repeats, so the
    // last repeat's values stand for all of them.
    result.registered = r.report.registered;
    result.failed = r.report.failed;
    result.failed_shed = r.report.failed_shed;
    result.failed_error = r.report.failed_error;
    result.fastpath_hits = r.fastpath_hits;
    elapsed_ms.add(r.run_wall_ms);
    if (r.run_wall_ms > 0.0) {
      rate.add(static_cast<double>(r.report.registered) /
               (r.run_wall_ms / 1e3));
    }
    // Stage totals accumulate across repeats; shares stay meaningful.
    for (const HotStage stage : kStages) {
      const int i = static_cast<int>(stage);
      result.stage_ns[i] += r.stage_ns[i];
    }
  }
  result.elapsed_ms_median = elapsed_ms.median();
  result.regs_per_s = rate.empty() ? 0.0 : rate.median();
  return result;
}

struct PerRegCosts {
  double allocs = 0.0;
  double x25519 = 0.0;
};

/// Heap allocations and X25519 scalar mults per registration on a warm
/// wire path, measured on the main thread (worker pools and the op
/// counters are thread-local, so the measurement thread must be the
/// running thread). Pass 0 warms this thread's buffer pool and
/// allocator arenas; pass 1 runs a fresh slice and is the one counted.
/// Slice construction/provisioning is excluded — only
/// LoadGenerator::run is inside the counting window. Resumption and the
/// ephemeral pool are on, matching the sweep above: the X25519 figure
/// is what pins the "warm exchanges do zero scalar mults" property at
/// workload scale.
PerRegCosts measure_per_reg_costs(bool smoke) {
  slice::SliceConfig cfg;
  cfg.mode = slice::IsolationMode::kContainer;
  cfg.tls_resumption = true;
  cfg.eph_pool = true;
  const std::uint32_t ues = smoke ? 60 : 200;
  cfg.subscriber_count = ues;
  load::LoadConfig load;
  load.ue_count = ues;
  load.arrivals.kind = load::ArrivalKind::kPoisson;
  load.arrivals.rate_per_s = 2000.0;

  PerRegCosts out;
  for (int pass = 0; pass < 2; ++pass) {
    slice::Slice slice(cfg);
    slice.create();
    load::LoadGenerator generator;
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    const std::uint64_t mults_before = crypto::op_counts().x25519_ops;
    const load::LoadReport report = generator.run(slice, load);
    const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
    const std::uint64_t mults_after = crypto::op_counts().x25519_ops;
    if (pass == 1 && report.registered > 0) {
      out.allocs = static_cast<double>(after - before) /
                   static_cast<double>(report.registered);
      out.x25519 = static_cast<double>(mults_after - mults_before) /
                   static_cast<double>(report.registered);
    }
  }
  BufferPool::publish_thread_stats();
  return out;
}

json::Value stage_object(const std::uint64_t ns[kHotStageCount]) {
  json::Object obj;
  for (const HotStage stage : kStages) {
    obj[hot_stage::name(stage)] = json::Value(ns[static_cast<int>(stage)]);
  }
  return json::Value(std::move(obj));
}

/// Re-parses the emitted document and checks the schema the CI smoke
/// stage (and downstream tooling) depends on. Returns false with a
/// diagnostic on any missing or mistyped field.
bool validate(const std::string& text) {
  const auto fail = [](const char* what) {
    std::fprintf(stderr, "throughput: schema validation failed: %s\n", what);
    return false;
  };
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "throughput: emitted JSON does not parse: %s\n",
                 e.what());
    return false;
  }
  if (!doc.is_object()) return fail("root is not an object");
  const json::Object& root = doc.as_object();
  const auto field = [&root](const char* key) -> const json::Value* {
    const auto it = root.find(key);
    return it == root.end() ? nullptr : &it->second;
  };

  const json::Value* schema = field("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kSchemaId) {
    return fail("schema id missing or wrong");
  }
  const json::Value* backend = field("backend");
  if (backend == nullptr || !backend->is_string()) return fail("backend");
  for (const char* key : {"ue_count", "rate_per_s", "repeats", "workers",
                          "regs_per_s", "wall_ms"}) {
    const json::Value* v = field(key);
    if (v == nullptr || !v->is_number()) return fail(key);
  }
  const json::Value* smoke = field("smoke");
  if (smoke == nullptr || !smoke->is_bool()) return fail("smoke");

  const json::Value* pool = field("wire_pool");
  if (pool == nullptr || !pool->is_object()) return fail("wire_pool");
  for (const char* key : {"hit", "miss", "oversize", "bytes"}) {
    const json::Object& p = pool->as_object();
    const auto it = p.find(key);
    if (it == p.end() || !it->second.is_number()) {
      return fail("wire_pool field");
    }
  }
  const json::Value* allocs = field("allocs_per_reg");
  if (allocs == nullptr || !allocs->is_number()) return fail("allocs_per_reg");

  const json::Value* resume = field("tls_resume");
  if (resume == nullptr || !resume->is_object()) return fail("tls_resume");
  for (const char* key : {"hit", "miss", "reject"}) {
    const json::Object& r = resume->as_object();
    const auto it = r.find(key);
    if (it == r.end() || !it->second.is_number()) {
      return fail("tls_resume field");
    }
  }
  const json::Value* eph = field("x25519_pool");
  if (eph == nullptr || !eph->is_object()) return fail("x25519_pool");
  for (const char* key : {"hit", "refill_keys", "shared_keys"}) {
    const json::Object& e = eph->as_object();
    const auto it = e.find(key);
    if (it == e.end() || !it->second.is_number()) {
      return fail("x25519_pool field");
    }
  }
  for (const char* key : {"resumption_rate", "x25519_per_reg"}) {
    const json::Value* v = field(key);
    if (v == nullptr || !v->is_number()) return fail(key);
  }

  const json::Value* modes = field("modes");
  if (modes == nullptr || !modes->is_array() || modes->as_array().empty()) {
    return fail("modes");
  }
  for (const json::Value& entry : modes->as_array()) {
    if (!entry.is_object()) return fail("modes entry not an object");
    const json::Object& m = entry.as_object();
    for (const char* key : {"registered", "failed", "shed", "error",
                            "fastpath_hits", "elapsed_ms", "regs_per_s"}) {
      const auto it = m.find(key);
      if (it == m.end() || !it->second.is_number()) return fail(key);
    }
    const auto mode_it = m.find("mode");
    if (mode_it == m.end() || !mode_it->second.is_string()) {
      return fail("mode name");
    }
    const auto stages_it = m.find("stage_ns");
    if (stages_it == m.end() || !stages_it->second.is_object()) {
      return fail("stage_ns");
    }
    const json::Object& stages = stages_it->second.as_object();
    for (const HotStage stage : kStages) {
      const auto it = stages.find(hot_stage::name(stage));
      if (it == stages.end() || !it->second.is_number()) {
        return fail("stage_ns bucket");
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const char* backend = crypto::backend_name(crypto::active_backend());
  const unsigned workers = sim::shard_workers();

  bench::heading("Wall-clock registration throughput");
  std::printf("  backend=%s ue_count=%u rate=%.0f/s repeats=%d workers=%u%s\n",
              backend, opt.ue_count, opt.rate_per_s, opt.repeats, workers,
              opt.smoke ? " (smoke)" : "");
  bench::print_note(
      "host time, not virtual time — every other bench reports the latter");
  if (workers > 1) {
    bench::print_note(
        "shards run concurrently; per-run wall numbers include host "
        "contention (SHIELD5G_SHARD_WORKERS=1 for uncontended timing)");
  }

  hot_stage::set_enabled(true);

  const slice::IsolationMode modes[] = {slice::IsolationMode::kMonolithic,
                                        slice::IsolationMode::kContainer,
                                        slice::IsolationMode::kSgx};

  // One flat sweep over every (mode, repeat); results stay grouped by
  // mode because case order is preserved.
  std::vector<load::SweepCase> cases;
  for (const slice::IsolationMode mode : modes) {
    for (int rep = 0; rep < opt.repeats; ++rep) {
      load::SweepCase c;
      c.label = std::string(slice::isolation_mode_name(mode)) + " rep=" +
                std::to_string(rep);
      c.slice.mode = mode;
      c.slice.subscriber_count = opt.ue_count;
      // Wall-clock bench, not the bit-identity oracle: run with the
      // resumption + precompute fast path the deployments would use.
      c.slice.tls_resumption = true;
      c.slice.eph_pool = true;
      c.load.ue_count = opt.ue_count;
      c.load.arrivals.kind = load::ArrivalKind::kPoisson;
      c.load.arrivals.rate_per_s = opt.rate_per_s;
      cases.push_back(std::move(c));
    }
  }
  const std::vector<load::SweepResult> sweep = load::run_sweep(cases);

  std::vector<ModeResult> results;
  std::uint64_t total_stage_ns[kHotStageCount] = {};
  std::uint32_t total_registered = 0;
  double total_wall_ms = 0.0;
  for (std::size_t m = 0; m < std::size(modes); ++m) {
    ModeResult r = fold_mode(modes[m], &sweep[m * opt.repeats], opt.repeats);
    std::printf("  %-11s %u/%u registered (%u shed, %u error), %.1f ms, "
                "%.0f regs/s wall, %llu fastpath hits\n",
                r.mode, r.registered, opt.ue_count, r.failed_shed,
                r.failed_error, r.elapsed_ms_median, r.regs_per_s,
                static_cast<unsigned long long>(r.fastpath_hits));
    std::uint64_t mode_total = 0;
    for (const HotStage stage : kStages) {
      mode_total += r.stage_ns[static_cast<int>(stage)];
    }
    for (const HotStage stage : kStages) {
      const int i = static_cast<int>(stage);
      total_stage_ns[i] += r.stage_ns[i];
      if (mode_total > 0) {
        std::printf("    %-10s %8.2f ms (%4.1f%%)\n", hot_stage::name(stage),
                    static_cast<double>(r.stage_ns[i]) / 1e6,
                    100.0 * static_cast<double>(r.stage_ns[i]) /
                        static_cast<double>(mode_total));
      }
    }
    // One slice-run's worth of wall time per mode (median over repeats);
    // the headline rate divides registrations by this aggregate.
    total_registered += r.registered;
    total_wall_ms += r.elapsed_ms_median;
    results.push_back(std::move(r));
  }
  hot_stage::set_enabled(false);

  const PerRegCosts per_reg = measure_per_reg_costs(opt.smoke);
  const std::uint64_t pool_hits = counter_value("wire.pool.hit");
  const std::uint64_t pool_misses = counter_value("wire.pool.miss");
  const std::uint64_t pool_total = pool_hits + pool_misses;
  std::printf("  wire pool: %llu hits / %llu misses (%.1f%% hit rate), "
              "%.1f allocs/registration warm\n",
              static_cast<unsigned long long>(pool_hits),
              static_cast<unsigned long long>(pool_misses),
              pool_total > 0
                  ? 100.0 * static_cast<double>(pool_hits) /
                        static_cast<double>(pool_total)
                  : 0.0,
              per_reg.allocs);

  // Resumption + precompute effectiveness across everything this
  // process ran (the sweep plus both per-reg passes).
  const std::uint64_t resume_hits = counter_value("tls.resume.hit");
  const std::uint64_t resume_misses = counter_value("tls.resume.miss");
  const std::uint64_t resume_rejects = counter_value("tls.resume.reject");
  const std::uint64_t handshakes = resume_hits + resume_misses + resume_rejects;
  const double resumption_rate =
      handshakes > 0
          ? static_cast<double>(resume_hits) / static_cast<double>(handshakes)
          : 0.0;
  std::printf("  tls resumption: %llu hits / %llu misses / %llu rejects "
              "(%.1f%% resumed), %.2f scalar mults/registration\n",
              static_cast<unsigned long long>(resume_hits),
              static_cast<unsigned long long>(resume_misses),
              static_cast<unsigned long long>(resume_rejects),
              100.0 * resumption_rate, per_reg.x25519);
  // refill_keys counts key pairs minted (a multiple of the batch
  // capacity, so it reads >= hits); shared_keys counts pairs whose
  // peer shared secret was batch-precomputed.
  std::printf("  x25519 pool: %llu hits / %llu keys minted in refills / "
              "%llu shared precomputed\n",
              static_cast<unsigned long long>(
                  counter_value("x25519.pool.hit")),
              static_cast<unsigned long long>(
                  counter_value("x25519.pool.refill_keys")),
              static_cast<unsigned long long>(
                  counter_value("x25519.pool.shared_keys")));

  const double headline_regs_per_s =
      total_wall_ms > 0.0
          ? static_cast<double>(total_registered) / (total_wall_ms / 1e3)
          : 0.0;
  std::printf("  headline: %u registrations in %.1f ms -> %.0f regs/s\n",
              total_registered, total_wall_ms, headline_regs_per_s);

  json::Object root;
  root["schema"] = json::Value(kSchemaId);
  root["backend"] = json::Value(backend);
  root["x25519_batch_engine"] =
      json::Value(crypto::x25519_batch_engine_name(crypto::x25519_batch_engine()));
  root["smoke"] = json::Value(opt.smoke);
  root["ue_count"] = json::Value(static_cast<std::uint64_t>(opt.ue_count));
  root["rate_per_s"] = json::Value(opt.rate_per_s);
  root["repeats"] = json::Value(static_cast<std::int64_t>(opt.repeats));
  root["workers"] = json::Value(static_cast<std::uint64_t>(workers));
  root["regs_per_s"] = json::Value(headline_regs_per_s);
  root["wall_ms"] = json::Value(total_wall_ms);
  root["stage_ns"] = stage_object(total_stage_ns);
  {
    json::Object pool_obj;
    pool_obj["hit"] = json::Value(pool_hits);
    pool_obj["miss"] = json::Value(pool_misses);
    pool_obj["oversize"] = json::Value(counter_value("wire.pool.oversize"));
    pool_obj["bytes"] = json::Value(counter_value("wire.pool.bytes"));
    root["wire_pool"] = json::Value(std::move(pool_obj));
  }
  root["allocs_per_reg"] = json::Value(per_reg.allocs);
  {
    json::Object resume_obj;
    resume_obj["hit"] = json::Value(resume_hits);
    resume_obj["miss"] = json::Value(resume_misses);
    resume_obj["reject"] = json::Value(resume_rejects);
    root["tls_resume"] = json::Value(std::move(resume_obj));
  }
  root["resumption_rate"] = json::Value(resumption_rate);
  {
    json::Object eph_obj;
    eph_obj["hit"] = json::Value(counter_value("x25519.pool.hit"));
    eph_obj["refill_keys"] = json::Value(counter_value("x25519.pool.refill_keys"));
    eph_obj["shared_keys"] = json::Value(counter_value("x25519.pool.shared_keys"));
    root["x25519_pool"] = json::Value(std::move(eph_obj));
  }
  root["x25519_per_reg"] = json::Value(per_reg.x25519);
  json::Array mode_entries;
  for (const ModeResult& r : results) {
    json::Object entry;
    entry["mode"] = json::Value(r.mode);
    entry["registered"] = json::Value(static_cast<std::uint64_t>(r.registered));
    entry["failed"] = json::Value(static_cast<std::uint64_t>(r.failed));
    entry["shed"] = json::Value(static_cast<std::uint64_t>(r.failed_shed));
    entry["error"] = json::Value(static_cast<std::uint64_t>(r.failed_error));
    entry["fastpath_hits"] = json::Value(r.fastpath_hits);
    entry["elapsed_ms"] = json::Value(r.elapsed_ms_median);
    entry["regs_per_s"] = json::Value(r.regs_per_s);
    entry["stage_ns"] = stage_object(r.stage_ns);
    mode_entries.emplace_back(std::move(entry));
  }
  root["modes"] = json::Value(std::move(mode_entries));

  const std::string text = json::Value(std::move(root)).dump();
  if (!validate(text)) return 1;

  std::ofstream out(opt.out_path, std::ios::trunc);
  out << text << '\n';
  if (!out) {
    std::fprintf(stderr, "throughput: cannot write %s\n",
                 opt.out_path.c_str());
    return 1;
  }
  std::printf("  wrote %s\n", opt.out_path.c_str());
  return 0;
}
