// ABLATION — P-AKA module chaining topology (paper §IV-B).
//
// The paper deliberately restricts P-AKA modules to talking only to
// their parent VNFs, noting that "a number of these exchanges could be
// reduced if the P-AKA modules directly communicated with each other".
// This bench quantifies that design decision: phase-1 AKA derivation
// (HE AV at eUDM, then SE derivation at eAUSF) orchestrated the paper's
// way versus a direct eUDM->eAUSF chain.
#include "bench/bench_util.h"
#include "bench/paka_harness.h"

using namespace shield5g;

namespace {

struct ChainSetup {
  sim::VirtualClock clock;
  sgx::Machine machine{clock};
  net::Bus bus{clock};
  net::HostEnv vnf_env{clock};
  std::unique_ptr<paka::EudmAkaService> eudm;
  std::unique_ptr<paka::EausfAkaService> eausf;
  std::unique_ptr<net::Server> ausf_vnf;  // parent-VNF handoff target

  explicit ChainSetup(paka::Isolation isolation) {
    paka::PakaOptions opts;
    opts.isolation = isolation;
    eudm = std::make_unique<paka::EudmAkaService>(machine, bus, opts);
    eausf = std::make_unique<paka::EausfAkaService>(machine, bus, opts);
    eudm->deploy();
    eudm->provision_key(nf::Supi{"001010000000001"}, Bytes(16, 0x4b));
    eausf->deploy();
    // Minimal AUSF VNF: accepts the HE AV handoff from the UDM and
    // relays the SE request to its own eAUSF module.
    ausf_vnf = std::make_unique<net::Server>("ausf", vnf_env, bus.costs());
    ausf_vnf->router().add(
        net::Method::kPost, "/nausf-auth/v1/he-av",
        [this](const net::RequestView& req, const net::PathParams&) {
          const auto av_body = json::parse(req.body);
          const auto se = bus.request("ausf", "eausf-aka",
                                      se_request_from(av_body), &vnf_env);
          return se.response;
        });
    bus.attach(*ausf_vnf);
    // Warm all cold paths.
    bus.request("udm", "eudm-aka", bench::eudm_request());
    bus.request("ausf", "eausf-aka", bench::eausf_request());
  }

  net::HttpRequest se_request_from(const json::Value& av_body) {
    json::Object body;
    body["rand"] = *av_body.get_string("rand");
    body["xresStar"] = *av_body.get_string("xresStar");
    body["snn"] = "5G:mnc001.mcc001.3gppnetwork.org";
    body["kausf"] = *av_body.get_string("kausf");
    return nf::json_post("/paka/v1/derive-se", json::Value(std::move(body)));
  }

  /// Paper topology: UDM asks eUDM, hands the HE AV to the AUSF VNF,
  /// which asks its own eAUSF module (three request/response pairs).
  sim::Nanos paper_flow(int* messages) {
    const sim::Nanos start = clock.now();
    const auto av = bus.request("udm", "eudm-aka", bench::eudm_request());
    net::HttpRequest handoff;
    handoff.method = net::Method::kPost;
    handoff.path = "/nausf-auth/v1/he-av";
    handoff.headers.set("content-type", "application/json");
    handoff.body = av.response.body;
    bus.request("udm", "ausf", handoff);
    *messages = 6;
    return clock.now() - start;
  }

  /// Direct chain: eUDM calls eAUSF itself, skipping the parent-VNF
  /// handoff — but under SGX the chained hop's client-side syscalls are
  /// enclave OCALLs (the inter-enclave penalty SafeBricks warns about).
  sim::Nanos direct_flow(int* messages) {
    const sim::Nanos start = clock.now();
    const auto av = bus.request("udm", "eudm-aka", bench::eudm_request());
    const auto av_body = json::parse(av.response.body);
    bus.request("eudm-aka", "eausf-aka", se_request_from(av_body),
                &eudm->env());
    *messages = 4;
    return clock.now() - start;
  }
};

void run(paka::Isolation isolation, const char* label, int n) {
  bench::subheading(label);
  ChainSetup setup(isolation);
  Samples paper_us, direct_us;
  int messages = 0;
  for (int i = 0; i < n; ++i) {
    paper_us.add(sim::to_us(setup.paper_flow(&messages)));
  }
  for (int i = 0; i < n; ++i) {
    direct_us.add(sim::to_us(setup.direct_flow(&messages)));
  }
  bench::print_dist_row("parent-VNF topology", paper_us, "us");
  bench::print_dist_row("direct module chain", direct_us, "us");
  bench::print_kv("direct-chain speedup",
                  paper_us.median() / direct_us.median(), "x");
}

}  // namespace

int main(int argc, char** argv) {
  const int n = bench::iterations(argc, argv, 200);
  bench::heading("ABLATION: P-AKA chaining topology (paper design decision)");
  run(paka::Isolation::kContainer, "container isolation", n);
  run(paka::Isolation::kSgx, "SGX isolation", n);
  bench::print_note(
      "the paper keeps the parent-VNF topology despite the possible "
      "saving, to preserve module autonomy and OAI's registration flow");
  return 0;
}
