// TAB3 — SGX-specific operational statistics for the P-AKA modules
// (paper Table III).
//
// Registers 1..10 UEs back to back against an SGX slice and reports the
// cumulative EENTER/EEXIT/AEX counters of each module after each UE,
// plus the per-UE difference and the empty-GSC-workload baseline.
#include "bench/bench_util.h"
#include "libos/gsc.h"
#include "libos/runtime.h"
#include "slice/slice.h"

using namespace shield5g;

int main(int argc, char** argv) {
  const int max_ues = std::min(10, bench::iterations(argc, argv, 10));
  bench::heading("TABLE III: SGX operational statistics (EENTER/EEXIT/AEX)");

  slice::SliceConfig cfg;
  cfg.mode = slice::IsolationMode::kSgx;
  cfg.subscriber_count = static_cast<std::uint32_t>(max_ues);
  slice::Slice s(cfg);
  s.create();

  struct Row {
    int ues;
    sgx::TransitionCounters eudm, eausf, eamf;
  };
  std::vector<Row> rows;
  for (int ue = 0; ue < max_ues; ++ue) {
    s.register_subscriber(static_cast<std::uint32_t>(ue), true);
    rows.push_back(Row{ue + 1, *s.eudm()->sgx_counters(),
                       *s.eausf()->sgx_counters(),
                       *s.eamf()->sgx_counters()});
  }

  std::printf("\n  %-8s %6s %10s %10s %10s\n", "Module", "#UEs", "EENTERs",
              "EEXITs", "AEXs");
  auto print_module = [&rows](const char* name,
                              sgx::TransitionCounters Row::*member) {
    for (const auto& row : rows) {
      if (row.ues > 3) continue;  // the paper prints up to 3 "for brevity"
      const auto& c = row.*member;
      std::printf("  %-8s %6d %10llu %10llu %10llu\n", name, row.ues,
                  static_cast<unsigned long long>(c.eenter),
                  static_cast<unsigned long long>(c.eexit),
                  static_cast<unsigned long long>(c.aex));
    }
  };
  print_module("eUDM", &Row::eudm);
  print_module("eAUSF", &Row::eausf);
  print_module("eAMF", &Row::eamf);

  bench::subheading("per-UE deltas (diff of consecutive registrations)");
  Samples deltas;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    deltas.add(static_cast<double>(
        (rows[i].eudm - rows[i - 1].eudm).eenter));
  }
  bench::print_dist_row("eUDM EENTERs per UE", deltas, "");
  bench::print_note(
      "AEX accrues with enclave lifetime (timer interrupts), not with "
      "workload: eUDM boots first and shows the largest count; the "
      "registration itself adds only its page-fault AEXs");
  bench::paper_row("per-UE EENTERs/EEXITs", "~90 each (diff of consecutive "
                   "registrations up to ten UEs)");
  bench::paper_row("AEX", "~140k, independent of the number of UEs");
  bench::paper_row("1 UE totals (eUDM)", "1508 EENTERs / 1414 EEXITs");

  bench::subheading("empty GSC workload (cost of the shim alone)");
  {
    sim::VirtualClock clock;
    sgx::Machine machine(clock);
    libos::GscBuildOptions build;
    const Bytes signer(32, 0x11);
    libos::GramineRuntime runtime(
        machine, libos::gsc_build("empty-workload", build, signer));
    runtime.boot();
    const auto& c = runtime.counters();
    std::printf("  empty workload: EENTERs %llu  EEXITs %llu  AEXs %llu\n",
                static_cast<unsigned long long>(c.eenter),
                static_cast<unsigned long long>(c.eexit),
                static_cast<unsigned long long>(c.aex));
    bench::paper_row("empty workload", "762 EENTERs / 680 EEXITs / "
                     "49,674 AEXs");
    bench::print_note(
        "Pistache-server deployment adds ~650 transitions over the empty "
        "workload (paper §V-B5); transitions occur only on network I/O, "
        "not on the in-enclave AKA computation");
  }
  return 0;
}
