// Host-time microbenchmarks (google-benchmark) of the cryptographic
// primitives and codecs underneath the testbed. Unlike the experiment
// harnesses (which report deterministic virtual time), these measure
// real wall-clock throughput of the from-scratch implementations.
#include <benchmark/benchmark.h>

#include "common/buffer_pool.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/ecies.h"
#include "crypto/hmac_sha256.h"
#include "crypto/key_hierarchy.h"
#include "crypto/milenage.h"
#include "crypto/sha256.h"
#include "crypto/suci.h"
#include "crypto/cpu_dispatch.h"
#include "crypto/x25519.h"
#include "crypto/x25519_batch.h"
#include "json/json.h"
#include "net/bus.h"
#include "net/env.h"
#include "net/http.h"
#include "net/router.h"
#include "net/tls.h"
#include "sim/clock.h"
#include "sim/scheduler.h"
#include "nf/aka_core.h"
#include "nf/nas.h"

using namespace shield5g;

namespace {

void BM_Aes128Block(benchmark::State& state) {
  const crypto::Aes128 aes(Bytes(16, 1));
  const Bytes block(16, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes.encrypt_block(block));
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Aes128Block);

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(2);
  const Bytes key = rng.bytes(32);
  const Bytes data = rng.bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_MilenageFullVector(benchmark::State& state) {
  Rng rng(3);
  const crypto::Milenage milenage(rng.bytes(16), rng.bytes(16));
  const Bytes rand = rng.bytes(16), sqn = rng.bytes(6), amf = rng.bytes(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(milenage.compute(rand, sqn, amf));
  }
}
BENCHMARK(BM_MilenageFullVector);

void BM_HeAvGeneration(benchmark::State& state) {
  Rng rng(4);
  const Bytes k = rng.bytes(16), opc = rng.bytes(16), rand = rng.bytes(16);
  const Bytes sqn = rng.bytes(6), amf = {0x80, 0x00};
  const std::string snn = "5G:mnc001.mcc001.3gppnetwork.org";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nf::generate_he_av(k, opc, rand, sqn, amf, snn));
  }
}
BENCHMARK(BM_HeAvGeneration);

void BM_X25519(benchmark::State& state) {
  Rng rng(5);
  const Bytes scalar = rng.bytes(32);
  const auto peer = crypto::x25519_keypair(rng.bytes(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::x25519(scalar, peer.public_key));
  }
}
BENCHMARK(BM_X25519);

// Batched ladder throughput: scalar engine vs the 4-lane AVX2 kernel at
// batch widths 1 / 4 / 8. Every iteration stamps fresh points (a
// counter over random bytes) so no point is ever sighted twice and the
// comb cache never graduates one — this isolates the ladder, which is
// what the batch engine accelerates. Reported items/s are mults/s.
void BM_X25519BatchLadder(benchmark::State& state) {
  const auto engine = state.range(1) == 0 ? crypto::X25519BatchEngine::kScalar
                      : state.range(1) == 1
                          ? crypto::X25519BatchEngine::kX4
                          : crypto::X25519BatchEngine::kIfma;
  if (engine == crypto::X25519BatchEngine::kX4 &&
      (!crypto::detail::x25519_x4_compiled() || !crypto::cpu_has_avx2())) {
    state.SkipWithError("AVX2 4-lane kernels unavailable on this host");
    return;
  }
  if (engine == crypto::X25519BatchEngine::kIfma &&
      (!crypto::detail::x25519_ifma_compiled() ||
       !crypto::cpu_has_avx512ifma())) {
    state.SkipWithError("AVX-512 IFMA kernels unavailable on this host");
    return;
  }
  crypto::detail::force_batch_engine(engine);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<std::array<std::uint8_t, 32>> scalars(n), points(n);
  std::vector<crypto::X25519Key> outs(n);
  std::vector<crypto::X25519BatchItem> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Bytes s = rng.bytes(32), p = rng.bytes(32);
    std::copy(s.begin(), s.end(), scalars[i].begin());
    std::copy(p.begin(), p.end(), points[i].begin());
    items[i] = crypto::X25519BatchItem{SecretView(ByteView(scalars[i])),
                                       ByteView(points[i]), &outs[i]};
  }
  std::uint64_t stamp = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      ++stamp;  // unique u-coordinate per mult: the comb never engages
      for (int b = 0; b < 8; ++b) {
        points[i][b] = static_cast<std::uint8_t>(stamp >> (8 * b));
      }
    }
    crypto::x25519_batch(items.data(), items.size());
    benchmark::DoNotOptimize(outs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
  crypto::detail::clear_forced_batch_engine();
}
BENCHMARK(BM_X25519BatchLadder)
    ->ArgNames({"batch", "engine"})  // engine: 0 scalar, 1 x4, 2 ifma
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({1, 2})
    ->Args({4, 2})
    ->Args({8, 2});

void BM_SuciConceal(benchmark::State& state) {
  Rng rng(6);
  const auto hn = crypto::x25519_keypair(rng.bytes(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::conceal_supi(
        "001", "01", "0000000001", crypto::SuciScheme::kProfileA,
        hn.public_key, rng.bytes(32)));
  }
}
BENCHMARK(BM_SuciConceal);

void BM_SuciDeconceal(benchmark::State& state) {
  Rng rng(7);
  const auto hn = crypto::x25519_keypair(rng.bytes(32));
  const auto suci = crypto::conceal_supi(
      "001", "01", "0000000001", crypto::SuciScheme::kProfileA,
      hn.public_key, rng.bytes(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::deconceal_suci(suci, hn.private_key));
  }
}
BENCHMARK(BM_SuciDeconceal);

void BM_JsonParseSbiBody(benchmark::State& state) {
  const std::string body =
      "{\"amfId\":\"8000\",\"opc\":\"cd63cb71954a9f4e48a5994e37a02baf\","
      "\"rand\":\"23553cbe9637a89d218ae64dae47bf35\",\"snn\":"
      "\"5G:mnc001.mcc001.3gppnetwork.org\",\"sqn\":\"ff9bb4d0b607\","
      "\"supi\":\"001010000000001\"}";
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::parse(body));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_JsonParseSbiBody);

void BM_NasEncodeDecode(benchmark::State& state) {
  nf::NasMessage msg;
  msg.type = nf::NasType::kAuthenticationRequest;
  msg.set(nf::NasIe::kRand, Bytes(16, 1));
  msg.set(nf::NasIe::kAutn, Bytes(16, 2));
  msg.set(nf::NasIe::kNgKsi, Bytes{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(nf::NasMessage::decode(msg.encode()));
  }
}
BENCHMARK(BM_NasEncodeDecode);

// ---------------------------------------------------------------------
// Wire-path benches: the zero-copy pipeline (pooled buffer ->
// serialize_into -> in-place TLS -> aliasing parse) against the owning
// copy path it replaced. Same bytes on the wire either way; only the
// allocation and memmove traffic differs.
// ---------------------------------------------------------------------

net::HttpRequest make_sbi_request() {
  net::HttpRequest req;
  req.method = net::Method::kPost;
  req.path = "/nausf-auth/v1/ue-authentications";
  req.headers.set("content-type", "application/json");
  req.headers.set("accept", "application/json");
  req.body =
      "{\"servingNetworkName\":\"5G:mnc001.mcc001.3gppnetwork.org\","
      "\"supiOrSuci\":\"suci-0-001-01-0000-0-0-0000000001\"}";
  return req;
}

void BM_HttpSerializeParseCopy(benchmark::State& state) {
  const net::HttpRequest req = make_sbi_request();
  for (auto _ : state) {
    const Bytes wire = req.serialize();
    benchmark::DoNotOptimize(net::HttpRequest::parse(wire));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(req.serialized_size()));
}
BENCHMARK(BM_HttpSerializeParseCopy);

void BM_HttpSerializeParseZeroCopy(benchmark::State& state) {
  const net::HttpRequest req = make_sbi_request();
  const std::size_t wire_size = req.serialized_size();
  for (auto _ : state) {
    PooledBuffer buf = BufferPool::local().acquire(
        net::TlsSession::kRecordOverhead + wire_size,
        net::TlsSession::kRecordHeader);
    req.serialize_into(buf);
    benchmark::DoNotOptimize(net::RequestView::parse(buf.view()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire_size));
}
BENCHMARK(BM_HttpSerializeParseZeroCopy);

void BM_TlsRecordRoundTripInPlace(benchmark::State& state) {
  Rng rng(8);
  const net::TlsIdentity id = net::TlsIdentity::generate(rng);
  Bytes hello;
  net::TlsSession client =
      net::TlsSession::client_connect(id.key.public_key, rng, hello);
  Bytes server_hello;
  auto server = net::TlsSession::server_accept(id.key, hello, server_hello);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Bytes payload = rng.bytes(n);
  for (auto _ : state) {
    PooledBuffer buf =
        BufferPool::local().acquire(net::TlsSession::kRecordOverhead + n,
                                  net::TlsSession::kRecordHeader);
    buf.append(payload);
    client.protect_in_place(buf);
    benchmark::DoNotOptimize(server->unprotect_in_place(buf));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TlsRecordRoundTripInPlace)->Arg(256)->Arg(4096);

void BM_PoolAcquireRelease(benchmark::State& state) {
  BufferPool& pool = BufferPool::local();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const BufferPool::Stats before = BufferPool::thread_stats();
  for (auto _ : state) {
    PooledBuffer buf = pool.acquire(n, 5);
    benchmark::DoNotOptimize(buf.data());
  }
  const BufferPool::Stats after = BufferPool::thread_stats();
  const double acquires =
      static_cast<double>((after.hits - before.hits) +
                          (after.misses - before.misses));
  if (acquires > 0.0) {
    state.counters["hit_rate"] =
        static_cast<double>(after.hits - before.hits) / acquires;
  }
}
BENCHMARK(BM_PoolAcquireRelease)->Arg(256)->Arg(8192)->Arg(65536);

void BM_TlsRecordRoundTrip(benchmark::State& state) {
  Rng rng(8);
  const net::TlsIdentity id = net::TlsIdentity::generate(rng);
  Bytes hello;
  net::TlsSession client =
      net::TlsSession::client_connect(id.key.public_key, rng, hello);
  Bytes server_hello;
  auto server = net::TlsSession::server_accept(id.key, hello, server_hello);
  const Bytes payload = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(server->unprotect(client.protect(payload)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TlsRecordRoundTrip)->Arg(256)->Arg(4096);

// ---------------------------------------------------------------------
// Bus round trip: the full SBI exchange (client NF -> bus -> server NF
// -> response) over the real wire path vs the co-located fast path
// (DESIGN.md §18). Keep-alive is on, so the handshake amortizes away
// and the per-exchange delta is pure record ceremony.
// ---------------------------------------------------------------------

void BM_BusRoundTrip(benchmark::State& state) {
  const bool fastpath = state.range(0) != 0;
  sim::VirtualClock clock;
  net::Bus bus(clock);
  bus.set_fastpath(fastpath);
  bus.set_attach_domain(1);
  bus.set_keep_alive(true);
  net::HostEnv env(clock);
  net::Server server("echo", env, bus.costs());
  server.router().add(net::Method::kPost, "/nausf-auth/v1/ue-authentications",
                      [](const net::RequestView& req, const net::PathParams&) {
                        return net::HttpResponse::json(200,
                                                       std::string(req.body));
                      });
  bus.attach(server);
  net::Server client("client", env, bus.costs());
  bus.attach(client);
  const net::HttpRequest req = make_sbi_request();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.request("client", "echo", req));
  }
  state.counters["fastpath_hits"] =
      static_cast<double>(bus.fastpath_hits());
}
BENCHMARK(BM_BusRoundTrip)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------
// Scheduler storage: push N events with colliding timestamps, then
// drain. Exercises the near-term ring (monotone tail appends) and the
// 4-ary heap (out-of-order inserts) together, at the two scales the
// ISSUE pins: 1k (cache-resident) and 100k (past any LLC).
// ---------------------------------------------------------------------

void BM_SchedulerPushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::VirtualClock clock;
    sim::Scheduler sched(clock);
    sched.reserve(static_cast<std::size_t>(n));
    std::uint64_t lcg = 0x5eedULL;
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      // Mix of ring-friendly (monotone) and heap-bound (random past)
      // instants, 3:1, mirroring the enqueue-soon-dominated sim load.
      const sim::Nanos when = (i % 4 != 0)
                                  ? static_cast<sim::Nanos>(i)
                                  : static_cast<sim::Nanos>((lcg >> 33) % 1000);
      sched.at(when, [] {});
    }
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerPushPop)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
