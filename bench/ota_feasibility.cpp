// OTA — HMEE feasibility test with a COTS UE (paper §V-B6, Fig. 11,
// Table IV).
//
// Reproduces the over-the-air scenario: a OnePlus 8 model connects to
// the OAI gNB (test PLMN 001/01, 106 PRBs, 3.6192 GHz) against an SGX
// slice — plus the two failure gates the paper reports (custom PLMN
// undetectable; OS build compatibility).
#include "bench/bench_util.h"
#include "ran/cots_ue.h"
#include "slice/slice.h"

using namespace shield5g;

int main(int, char**) {
  bench::heading("OTA: COTS UE feasibility test through the P-AKA modules");

  slice::SliceConfig cfg;
  cfg.mode = slice::IsolationMode::kSgx;
  cfg.subscriber_count = 1;
  slice::Slice s(cfg);
  const auto creation = s.create();

  std::printf("  testbed (paper Table IV analogue):\n");
  std::printf("    core host : 2x Xeon Silver 4314, 16GB EPC, "
              "SGX slice (attested=%s)\n",
              creation.attestation_ok ? "yes" : "no");
  std::printf("    gNB       : %s, PLMN %s, %u PRBs, %.4f GHz\n",
              s.gnb().cell().name.c_str(), s.gnb().cell().plmn.id().c_str(),
              s.gnb().cell().prbs, s.gnb().cell().frequency_ghz);
  const ran::CotsModel model;
  std::printf("    UE        : %s, %s\n", model.model.c_str(),
              model.os_version.c_str());

  // Scenario 1: the paper's successful connection.
  {
    ran::CotsUe phone(model, s.subscriber(0));
    const auto outcome = phone.connect({s.gnb().cell()}, s.gnbsim());
    std::printf("\n  [1] test PLMN + compatible OS : %s",
                ran::ota_outcome_name(outcome));
    if (outcome == ran::OtaOutcome::kConnected) {
      std::printf("  -> \"%s\"\n", phone.network_name().c_str());
      std::printf("      data session up, UE IP %s\n",
                  phone.device().ue_ip().c_str());
    } else {
      std::printf("\n");
    }
  }

  // Scenario 2: custom PLMN broadcast (paper: UE cannot detect the gNB).
  {
    ran::CotsUe phone(model, s.subscriber(0), 2);
    ran::CellConfig custom = s.gnb().cell();
    custom.plmn = nf::Plmn{"123", "45"};
    std::printf("  [2] custom PLMN 12345         : %s\n",
                ran::ota_outcome_name(
                    phone.connect({custom}, s.gnbsim())));
  }

  // Scenario 3: other OS build (paper: specific Oxygen build required).
  {
    ran::CotsModel other_os = model;
    other_os.os_version = "Oxygen 12.1.1.1.IN21AA";
    ran::CotsUe phone(other_os, s.subscriber(0), 3);
    std::printf("  [3] unvalidated OS build      : %s\n",
                ran::ota_outcome_name(
                    phone.connect({s.gnb().cell()}, s.gnbsim())));
  }

  bench::paper_row("result", "OnePlus 8 registers through the isolated AKA "
                   "functions: \"Test1-1 - OpenAirInterface\"");
  bench::paper_row("gates", "test PLMN 00101 required for detection; "
                   "Oxygen 11.0.11.11.IN21DA required for the session");
  return 0;
}
