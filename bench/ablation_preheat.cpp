// ABLATION — sgx.preheat_enclave (paper §IV-C / §V-B1).
//
// Preheat pre-faults all heap pages during initialization: the enclave
// loads much slower but steady-state requests avoid EPC faults. This
// bench measures both sides of that trade on the eUDM module.
#include "bench/bench_util.h"
#include "bench/paka_harness.h"

using namespace shield5g;

namespace {

void run(bool preheat, int n) {
  paka::PakaOptions opts;
  opts.isolation = paka::Isolation::kSgx;
  opts.preheat = preheat;
  bench::ModuleBench<paka::EudmAkaService> mb(opts);
  const sim::Nanos load = mb.deploy();

  const auto req = bench::eudm_request();
  const auto first = mb.request(req);
  Samples stable;
  for (int i = 0; i < n; ++i) {
    stable.add(sim::to_us(mb.request(req).response_ns));
  }
  bench::subheading(preheat ? "preheat enabled (paper configuration)"
                            : "preheat disabled");
  bench::print_kv("enclave load time", sim::to_s(load), "s");
  bench::print_kv("initial response R_I", sim::to_ms(first.response_ns),
                  "ms");
  bench::print_dist_row("stable response R_S", stable, "us");
}

}  // namespace

int main(int argc, char** argv) {
  const int n = bench::iterations(argc, argv, 300);
  bench::heading("ABLATION: sgx.preheat_enclave on the eUDM module");
  run(true, n);
  run(false, n);
  bench::print_note(
      "preheat shifts EPC page-fault cost from the first requests into "
      "the load phase - the right trade for a long-lived AKA server, the "
      "wrong one for frequently-redeployed ephemeral services (§V-B1)");
  return 0;
}
