// FIG10 — Stable (R_S) and initial (R_I) response time of the P-AKA
// modules from the parent VNF's perspective (paper Fig. 10, feeding the
// R columns of Table II).
//
// R_S: repeated requests against a warm module. R_I: the first request
// after a fresh deployment, which walks the lazy-loading and cold code
// paths ("several OCALLs and ECALLs to load drivers and other network
// stack dependencies", §V-B4).
#include "bench/bench_util.h"
#include "bench/paka_harness.h"

using namespace shield5g;

namespace {

struct Series {
  Samples stable_us;
  Samples initial_ms;
};

template <typename Service>
Series measure(paka::Isolation isolation, const net::HttpRequest& req,
               int stable_n, int initial_n) {
  Series series;
  paka::PakaOptions opts;
  opts.isolation = isolation;

  {
    bench::ModuleBench<Service> mb(opts);
    mb.deploy();
    mb.request(req);  // cold path once
    for (int i = 0; i < stable_n; ++i) {
      series.stable_us.add(sim::to_us(mb.request(req).response_ns));
    }
  }
  for (int i = 0; i < initial_n; ++i) {
    bench::ModuleBench<Service> mb(opts, 100 + i);
    mb.deploy();
    series.initial_ms.add(sim::to_ms(mb.request(req).response_ns));
  }
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const int stable_n = bench::iterations(argc, argv, 500);
  const int initial_n = std::max(20, stable_n / 10);
  bench::heading("FIG 10: stable and initial response time of the modules");
  std::printf("  %d stable requests, %d fresh deployments per module\n",
              stable_n, initial_n);

  const auto cu = measure<paka::EudmAkaService>(
      paka::Isolation::kContainer, bench::eudm_request(), stable_n, 3);
  const auto ca = measure<paka::EausfAkaService>(
      paka::Isolation::kContainer, bench::eausf_request(), stable_n, 3);
  const auto cm = measure<paka::EamfAkaService>(
      paka::Isolation::kContainer, bench::eamf_request(), stable_n, 3);
  const auto su = measure<paka::EudmAkaService>(
      paka::Isolation::kSgx, bench::eudm_request(), stable_n, initial_n);
  const auto sa = measure<paka::EausfAkaService>(
      paka::Isolation::kSgx, bench::eausf_request(), stable_n, initial_n);
  const auto sm = measure<paka::EamfAkaService>(
      paka::Isolation::kSgx, bench::eamf_request(), stable_n, initial_n);

  bench::subheading("(a) stable response latency R_S");
  bench::print_dist_row("eUDM  container", cu.stable_us, "us");
  bench::print_dist_row("eAUSF container", ca.stable_us, "us");
  bench::print_dist_row("eAMF  container", cm.stable_us, "us");
  bench::print_dist_row("eUDM  SGX", su.stable_us, "us");
  bench::print_dist_row("eAUSF SGX", sa.stable_us, "us");
  bench::print_dist_row("eAMF  SGX", sm.stable_us, "us");

  bench::subheading("(b) initial response latency R_I (SGX)");
  bench::print_dist_row("eUDM  SGX", su.initial_ms, "ms");
  bench::print_dist_row("eAUSF SGX", sa.initial_ms, "ms");
  bench::print_dist_row("eAMF  SGX", sm.initial_ms, "ms");

  bench::subheading("ratios");
  bench::print_kv("eUDM  R_S ratio (SGX/container)",
                  su.stable_us.median() / cu.stable_us.median(), "x");
  bench::print_kv("eAUSF R_S ratio",
                  sa.stable_us.median() / ca.stable_us.median(), "x");
  bench::print_kv("eAMF  R_S ratio",
                  sm.stable_us.median() / cm.stable_us.median(), "x");
  bench::print_kv("eUDM  R_I / R_S",
                  su.initial_ms.median() * 1'000 / su.stable_us.median(),
                  "x");
  bench::print_kv("eAUSF R_I / R_S",
                  sa.initial_ms.median() * 1'000 / sa.stable_us.median(),
                  "x");
  bench::print_kv("eAMF  R_I / R_S",
                  sm.initial_ms.median() * 1'000 / sm.stable_us.median(),
                  "x");
  bench::paper_row("R_S ratios", "2.2 (eUDM), 2.5 (eAUSF), 2.9 (eAMF)");
  bench::paper_row("R_I / R_S", "19.04, 18.37, 21.42 (~20x)");
  bench::paper_row("R_I band", "22.0-23.6 ms across the modules");
  return 0;
}
