// TAB2 — SGX overhead across the isolated modules (paper Table II) plus
// the end-to-end session-setup share discussed in §V-B4.
//
// Combines the Fig. 9 (L_F, L_T) and Fig. 10 (R) measurements into the
// paper's ratio table, then measures full UE session setup with and
// without SGX to compute the fraction of the setup delay attributable
// to enclave isolation.
#include "bench/bench_util.h"
#include "bench/paka_harness.h"
#include "slice/slice.h"

using namespace shield5g;

namespace {

struct ModuleRatios {
  double lf = 0, lt = 0, rs = 0, ri_over_rs = 0;
};

template <typename Service>
ModuleRatios measure_module(const net::HttpRequest& req, int n) {
  ModuleRatios ratios;
  Samples lf_c, lt_c, r_c, lf_s, lt_s, r_s, r_i;

  for (paka::Isolation isolation :
       {paka::Isolation::kContainer, paka::Isolation::kSgx}) {
    paka::PakaOptions opts;
    opts.isolation = isolation;
    bench::ModuleBench<Service> mb(opts);
    mb.deploy();
    const auto first = mb.request(req);
    if (isolation == paka::Isolation::kSgx) {
      r_i.add(sim::to_us(first.response_ns));
    }
    mb.service->server().reset_stats();
    for (int i = 0; i < n; ++i) {
      const auto exchange = mb.request(req);
      if (isolation == paka::Isolation::kSgx) {
        r_s.add(sim::to_us(exchange.response_ns));
      } else {
        r_c.add(sim::to_us(exchange.response_ns));
      }
    }
    auto& lf = isolation == paka::Isolation::kSgx ? lf_s : lf_c;
    auto& lt = isolation == paka::Isolation::kSgx ? lt_s : lt_c;
    for (double v : mb.service->server().lf_us().values()) lf.add(v);
    for (double v : mb.service->server().lt_us().values()) lt.add(v);
  }
  ratios.lf = lf_s.median() / lf_c.median();
  ratios.lt = lt_s.median() / lt_c.median();
  ratios.rs = r_s.median() / r_c.median();
  ratios.ri_over_rs = r_i.mean() / r_s.median();
  return ratios;
}

double mean_setup_ms(slice::IsolationMode mode, int regs) {
  slice::SliceConfig cfg;
  cfg.mode = mode;
  cfg.subscriber_count = static_cast<std::uint32_t>(regs + 1);
  slice::Slice s(cfg);
  s.create();
  s.register_subscriber(0, true);
  Samples setup;
  for (int i = 1; i <= regs; ++i) {
    setup.add(sim::to_ms(
        s.register_subscriber(static_cast<std::uint32_t>(i), true)
            .setup_time));
  }
  return setup.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const int n = bench::iterations(argc, argv, 300);
  bench::heading("TABLE II: SGX overhead across the isolated modules");
  std::printf("  %d requests per module per isolation\n", n);

  const ModuleRatios udm =
      measure_module<paka::EudmAkaService>(bench::eudm_request(), n);
  const ModuleRatios ausf =
      measure_module<paka::EausfAkaService>(bench::eausf_request(), n);
  const ModuleRatios amf =
      measure_module<paka::EamfAkaService>(bench::eamf_request(), n);

  std::printf("\n  %-8s %8s %8s %12s %12s\n", "Module", "L_F", "L_T",
              "R_S^SGX/R^C", "R_I/R_S");
  auto row = [](const char* name, const ModuleRatios& r) {
    std::printf("  %-8s %7.2fx %7.2fx %11.2fx %11.2fx\n", name, r.lf, r.lt,
                r.rs, r.ri_over_rs);
  };
  row("eUDM", udm);
  row("eAUSF", ausf);
  row("eAMF", amf);
  bench::paper_row("eUDM", "L_F 1.2x  L_T 1.86x  R 2.2x  R_I/R_S 19.04");
  bench::paper_row("eAUSF", "L_F 1.3x  L_T 2.15x  R 2.5x  R_I/R_S 18.37");
  bench::paper_row("eAMF", "L_F 1.5x  L_T 2.43x  R 2.9x  R_I/R_S 21.42");

  bench::subheading("end-to-end session setup share (paper §V-B4)");
  const int regs = std::max(10, n / 10);
  const double container_ms =
      mean_setup_ms(slice::IsolationMode::kContainer, regs);
  const double sgx_ms = mean_setup_ms(slice::IsolationMode::kSgx, regs);
  bench::print_kv("session setup, container", container_ms, "ms");
  bench::print_kv("session setup, SGX", sgx_ms, "ms");
  bench::print_kv("cumulative SGX delay", sgx_ms - container_ms, "ms");
  bench::print_kv("SGX share of setup",
                  (sgx_ms - container_ms) / sgx_ms * 100.0, "%");
  bench::paper_row("session setup", "62.38 ms end to end");
  bench::paper_row("cumulative SGX delay", "3.48 ms = 5.58% of setup");
  return 0;
}
