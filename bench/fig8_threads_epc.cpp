// FIG8 — Effect of the enclave thread budget and EPC size on the eUDM
// P-AKA module (paper Fig. 8).
//
// Sweeps sgx.max_threads in {4, 10, 50} and the EPC size in
// {512M, 2G, 8G}, plus the non-SGX container baseline, and reports the
// functional (L_F) and total (L_T) latency of the module. Each
// configuration is an independent simulation (own clock, module, bus),
// so the six rows fan out over the shard pool and print in config
// order — bit-identical to a sequential run. Paper: more threads do
// not help a single-threaded server; EPC beyond 512 MB does not help
// either, and 8 GB slightly *hurts* with a wider interquartile range
// (paging).
#include <vector>

#include "bench/bench_util.h"
#include "bench/paka_harness.h"
#include "sim/shard_pool.h"

using namespace shield5g;

namespace {

struct Config {
  const char* label;
  paka::Isolation isolation;
  std::uint32_t threads;
  std::uint64_t epc;
};

struct ConfigResult {
  Samples lf_us;
  Samples lt_us;
};

ConfigResult run_config(const Config& config, int requests) {
  paka::PakaOptions opts;
  opts.isolation = config.isolation;
  opts.max_threads = config.threads;
  opts.epc_size = config.epc;
  bench::ModuleBench<paka::EudmAkaService> mb(opts);
  mb.deploy();

  const auto req = bench::eudm_request();
  mb.request(req);  // absorb the first-request cold path
  mb.service->server().reset_stats();
  for (int i = 0; i < requests; ++i) mb.request(req);

  return {mb.service->server().lf_us(), mb.service->server().lt_us()};
}

}  // namespace

int main(int argc, char** argv) {
  const int n = bench::iterations(argc, argv, 500);
  const unsigned workers = sim::shard_workers();
  bench::heading(
      "FIG 8: thread count and EPC size sweep on the eUDM P-AKA module");
  std::printf("  %d requests per configuration, %u shard worker%s\n", n,
              workers, workers == 1 ? "" : "s");

  const Config configs[] = {
      {"SGX threads=4  EPC=512M", paka::Isolation::kSgx, 4, 512ULL << 20},
      {"SGX threads=10 EPC=512M", paka::Isolation::kSgx, 10, 512ULL << 20},
      {"SGX threads=50 EPC=512M", paka::Isolation::kSgx, 50, 512ULL << 20},
      {"SGX threads=4  EPC=2G", paka::Isolation::kSgx, 4, 2ULL << 30},
      {"SGX threads=50 EPC=8G", paka::Isolation::kSgx, 50, 8ULL << 30},
      {"Non-SGX (container)", paka::Isolation::kContainer, 4, 512ULL << 20},
  };

  sim::ShardPool pool;
  const std::vector<ConfigResult> results = pool.map(
      std::size(configs),
      [&configs, n](std::size_t i) { return run_config(configs[i], n); });
  for (std::size_t i = 0; i < std::size(configs); ++i) {
    bench::subheading(configs[i].label);
    bench::print_dist_row("L_F (functional)", results[i].lf_us, "us");
    bench::print_dist_row("L_T (total)", results[i].lt_us, "us");
  }

  bench::paper_row("threads 4 -> 50", "no improvement (server is "
                   "single-threaded; 3 Gramine helpers + 1 worker)");
  bench::paper_row("EPC 512M -> 2G", "no effect");
  bench::paper_row("EPC 8G", "slight slowdown, wider IQR (paging)");
  bench::paper_row("non-SGX L_F / L_T", "~50-60 us / ~100-175 us band for "
                   "the SGX rows vs lower non-SGX");
  return 0;
}
