// FIG8 — Effect of the enclave thread budget and EPC size on the eUDM
// P-AKA module (paper Fig. 8).
//
// Sweeps sgx.max_threads in {4, 10, 50} and the EPC size in
// {512M, 2G, 8G}, plus the non-SGX container baseline, and reports the
// functional (L_F) and total (L_T) latency of the module. Paper: more
// threads do not help a single-threaded server; EPC beyond 512 MB does
// not help either, and 8 GB slightly *hurts* with a wider interquartile
// range (paging).
#include "bench/bench_util.h"
#include "bench/paka_harness.h"

using namespace shield5g;

namespace {

struct Config {
  const char* label;
  paka::Isolation isolation;
  std::uint32_t threads;
  std::uint64_t epc;
};

void run_config(const Config& config, int requests) {
  paka::PakaOptions opts;
  opts.isolation = config.isolation;
  opts.max_threads = config.threads;
  opts.epc_size = config.epc;
  bench::ModuleBench<paka::EudmAkaService> mb(opts);
  mb.deploy();

  const auto req = bench::eudm_request();
  mb.request(req);  // absorb the first-request cold path
  mb.service->server().reset_stats();
  for (int i = 0; i < requests; ++i) mb.request(req);

  bench::subheading(config.label);
  bench::print_dist_row("L_F (functional)",
                        mb.service->server().lf_us(), "us");
  bench::print_dist_row("L_T (total)", mb.service->server().lt_us(), "us");
}

}  // namespace

int main(int argc, char** argv) {
  const int n = bench::iterations(argc, argv, 500);
  bench::heading(
      "FIG 8: thread count and EPC size sweep on the eUDM P-AKA module");
  std::printf("  %d requests per configuration\n", n);

  const Config configs[] = {
      {"SGX threads=4  EPC=512M", paka::Isolation::kSgx, 4, 512ULL << 20},
      {"SGX threads=10 EPC=512M", paka::Isolation::kSgx, 10, 512ULL << 20},
      {"SGX threads=50 EPC=512M", paka::Isolation::kSgx, 50, 512ULL << 20},
      {"SGX threads=4  EPC=2G", paka::Isolation::kSgx, 4, 2ULL << 30},
      {"SGX threads=50 EPC=8G", paka::Isolation::kSgx, 50, 8ULL << 30},
      {"Non-SGX (container)", paka::Isolation::kContainer, 4, 512ULL << 20},
  };
  for (const Config& config : configs) run_config(config, n);

  bench::paper_row("threads 4 -> 50", "no improvement (server is "
                   "single-threaded; 3 Gramine helpers + 1 worker)");
  bench::paper_row("EPC 512M -> 2G", "no effect");
  bench::paper_row("EPC 8G", "slight slowdown, wider IQR (paging)");
  bench::paper_row("non-SGX L_F / L_T", "~50-60 us / ~100-175 us band for "
                   "the SGX rows vs lower non-SGX");
  return 0;
}
