// ABLATION — Gramine's exitless (switchless-OCALL) feature, which the
// paper lists as a future optimization (§V-B7): an untrusted helper
// thread services OCALLs so the enclave thread never transitions.
#include "bench/bench_util.h"
#include "bench/paka_harness.h"

using namespace shield5g;

namespace {

void run(bool exitless, int n) {
  paka::PakaOptions opts;
  opts.isolation = paka::Isolation::kSgx;
  opts.exitless = exitless;
  bench::ModuleBench<paka::EudmAkaService> mb(opts);
  mb.deploy();

  const auto req = bench::eudm_request();
  mb.request(req);
  mb.service->server().reset_stats();
  const auto before = *mb.service->sgx_counters();
  Samples stable;
  for (int i = 0; i < n; ++i) {
    stable.add(sim::to_us(mb.request(req).response_ns));
  }
  const auto delta = *mb.service->sgx_counters() - before;

  bench::subheading(exitless ? "exitless OCALLs (rpc helper threads)"
                             : "regular OCALLs (paper configuration)");
  bench::print_dist_row("stable response R_S", stable, "us");
  bench::print_dist_row("L_T", mb.service->server().lt_us(), "us");
  bench::print_kv("EENTER per request",
                  static_cast<double>(delta.eenter) / n, "");
  bench::print_kv("EEXIT per request",
                  static_cast<double>(delta.eexit) / n, "");
}

}  // namespace

int main(int argc, char** argv) {
  const int n = bench::iterations(argc, argv, 300);
  bench::heading("ABLATION: exitless OCALLs on the eUDM module (§V-B7)");
  run(false, n);
  run(true, n);
  bench::print_note(
      "exitless removes the 10k-18k-cycle transitions from the request "
      "path but pins helper threads and is flagged insecure for "
      "production by Gramine - the paper leaves it disabled");
  return 0;
}
